//! Job-accurate task-set simulation on an `ami-arch` processor.
//!
//! A **preemptive** earliest-deadline-first loop releases jobs
//! periodically, draws each job's actual demand uniformly in
//! `[best_case, 1] × WCET` from a seeded RNG, lets the [`DvsPolicy`] pick
//! a speed at each job's first dispatch, and integrates busy and idle
//! energy over the exact execution slices. Because every policy runs jobs
//! at a rate no lower than the utilization-static speed (peak ×
//! U / 0.9) — or, for the oracle, at a rate that preserves the static
//! schedule's per-job occupancy — preemptive EDF meets all deadlines for
//! any set with worst-case utilization ≤ [`DvsPolicy::OCCUPANCY_TARGET`].

use crate::dpm::Dpm;
use crate::levels::FrequencyLadder;
use crate::policy::DvsPolicy;
use crate::task::TaskSet;
use ami_arch::Processor;
use ami_sim::sim_rng;
use ami_units::{ComputeRate, Energy, OpCount, Power, TimeSpan};
use rand::RngExt;

/// Result of one task-set simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DvsReport {
    /// Total energy over the horizon (busy + idle/sleep).
    pub total_energy: Energy,
    /// Energy spent executing jobs.
    pub busy_energy: Energy,
    /// Energy spent idling between jobs.
    pub idle_energy: Energy,
    /// Time spent executing.
    pub busy_time: TimeSpan,
    /// Jobs executed.
    pub jobs_run: u64,
    /// Jobs that completed after their deadline.
    pub deadline_misses: u64,
    /// The simulated horizon.
    pub horizon: TimeSpan,
}

impl DvsReport {
    /// Long-run average power.
    pub fn average_power(&self) -> Power {
        self.total_energy / self.horizon
    }
}

/// One pending job during simulation.
#[derive(Debug, Clone, Copy)]
struct Job {
    task: usize,
    release: TimeSpan,
    deadline: TimeSpan,
    actual: OpCount,
    wcet: OpCount,
}

/// Simulates `tasks` on `processor` under `policy` for `horizon`,
/// deterministic in `seed`. Idle gaps cost the processor's nominal-supply
/// idle power; see [`simulate_taskset_with_dpm`] for timeout shutdown.
///
/// # Panics
///
/// Panics if the task set's worst-case demand exceeds the processor's
/// peak throughput (the set is unschedulable at any voltage), or if
/// `horizon` is not positive.
pub fn simulate_taskset(
    processor: &Processor,
    tasks: &TaskSet,
    policy: DvsPolicy,
    horizon: TimeSpan,
    seed: u64,
) -> DvsReport {
    simulate_inner(
        processor,
        tasks,
        policy,
        horizon,
        seed,
        None,
        &FrequencyLadder::continuous(),
    )
}

/// [`simulate_taskset`] with job rates quantized up to a discrete
/// [`FrequencyLadder`] (ablation A4).
///
/// # Panics
///
/// Same conditions as [`simulate_taskset`].
pub fn simulate_taskset_with_levels(
    processor: &Processor,
    tasks: &TaskSet,
    policy: DvsPolicy,
    ladder: &FrequencyLadder,
    horizon: TimeSpan,
    seed: u64,
) -> DvsReport {
    simulate_inner(processor, tasks, policy, horizon, seed, None, ladder)
}

/// [`simulate_taskset`] with a [`Dpm`] shutdown policy applied to idle gaps.
///
/// # Panics
///
/// Same conditions as [`simulate_taskset`].
pub fn simulate_taskset_with_dpm(
    processor: &Processor,
    tasks: &TaskSet,
    policy: DvsPolicy,
    horizon: TimeSpan,
    seed: u64,
    dpm: &Dpm,
) -> DvsReport {
    simulate_inner(
        processor,
        tasks,
        policy,
        horizon,
        seed,
        Some(*dpm),
        &FrequencyLadder::continuous(),
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_inner(
    processor: &Processor,
    tasks: &TaskSet,
    policy: DvsPolicy,
    horizon: TimeSpan,
    seed: u64,
    dpm: Option<Dpm>,
    ladder: &FrequencyLadder,
) -> DvsReport {
    assert!(horizon > TimeSpan::ZERO, "horizon must be positive");
    let peak = processor.peak_throughput_nominal();
    let utilization = tasks.utilization(peak);
    assert!(
        utilization <= 1.0,
        "task set demands {:.2}x the processor's peak throughput",
        utilization
    );

    let mut rng = sim_rng(seed);
    // Pre-release all jobs in the horizon, task-major, then order by
    // (release, deadline): a deterministic non-preemptive EDF.
    let mut jobs: Vec<Job> = Vec::new();
    for (idx, task) in tasks.tasks().iter().enumerate() {
        let releases = (horizon.as_seconds() / task.period().as_seconds()).ceil() as u64;
        for k in 0..releases {
            let release = TimeSpan::new(task.period().as_seconds() * k as f64);
            if release >= horizon {
                break;
            }
            let frac = rng.random_range(task.best_case_fraction()..=1.0);
            jobs.push(Job {
                task: idx,
                release,
                deadline: release + task.period(),
                actual: OpCount::from_ops(task.wcet_ops().as_ops() * frac),
                wcet: task.wcet_ops(),
            });
        }
    }
    jobs.sort_by(|a, b| {
        a.release
            .total_cmp(&b.release)
            .then(a.deadline.total_cmp(&b.deadline))
            .then(a.task.cmp(&b.task))
    });

    let idle_power = processor.idle_power(processor.node().vdd_nominal());
    let mut now = TimeSpan::ZERO;
    let mut busy_energy = Energy::ZERO;
    let mut idle_energy = Energy::ZERO;
    let mut busy_time = TimeSpan::ZERO;
    let mut misses = 0u64;

    let charge_idle = |gap: TimeSpan, idle_energy: &mut Energy| {
        if gap <= TimeSpan::ZERO {
            return;
        }
        *idle_energy += match dpm {
            Some(d) => d.gap_energy(idle_power, gap),
            None => idle_power * gap,
        };
    };

    // Preemptive EDF over the pre-released job list. Each ready entry is
    // (remaining ops, chosen rate+power); the rate is fixed at the job's
    // first dispatch.
    struct Active {
        job: usize,
        remaining: f64,
        rate: Option<(ComputeRate, Power)>,
    }
    let mut ready: Vec<Active> = Vec::new();
    let mut next_release = 0usize;

    loop {
        if ready.is_empty() {
            let Some(job) = jobs.get(next_release) else {
                break;
            };
            if job.release > now {
                charge_idle(job.release - now, &mut idle_energy);
                now = job.release;
            }
            // Admit every job released at this instant.
            while next_release < jobs.len() && jobs[next_release].release <= now {
                ready.push(Active {
                    job: next_release,
                    remaining: jobs[next_release].actual.as_ops(),
                    rate: None,
                });
                next_release += 1;
            }
            continue;
        }
        // Earliest deadline among ready jobs (FIFO on ties via job index).
        let pick = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                jobs[a.job]
                    .deadline
                    .total_cmp(&jobs[b.job].deadline)
                    .then(a.job.cmp(&b.job))
            })
            .map(|(idx, _)| idx)
            .expect("ready is non-empty");
        // Fix the job's speed at first dispatch.
        if ready[pick].rate.is_none() {
            let job = &jobs[ready[pick].job];
            let window = (job.deadline - now).max(TimeSpan::from_nanos(1.0));
            let rate = ladder.quantize_up(
                effective_rate(
                    policy.job_rate(job.wcet, job.actual, window, peak, utilization),
                    peak,
                ),
                peak,
            );
            let power = processor
                .power_for_throughput(rate)
                .expect("rate is clamped to peak");
            ready[pick].rate = Some((rate, power));
        }
        let (rate, power) = ready[pick].rate.expect("just fixed");
        let to_finish = TimeSpan::new(ready[pick].remaining / rate.as_ops_per_second());
        // A residual above the finish threshold can still be too small to
        // advance `now` by one representable f64 step (high rates late in
        // a long horizon); the slice below would then be zero forever, so
        // retire the job here. Reachable only when the slice arithmetic
        // can no longer make progress — terminating runs never take it.
        if now + to_finish == now {
            let finished = ready.swap_remove(pick);
            if now > jobs[finished.job].deadline * (1.0 + 1e-9) {
                misses += 1;
            }
            continue;
        }
        // Run until completion or the next release, whichever is sooner.
        let slice_end = match jobs.get(next_release) {
            Some(next) if next.release < now + to_finish => next.release,
            _ => now + to_finish,
        };
        let slice = slice_end - now;
        if slice > TimeSpan::ZERO {
            busy_energy += power * slice;
            busy_time += slice;
            ready[pick].remaining -= rate.as_ops_per_second() * slice.as_seconds();
            now = slice_end;
        }
        if ready[pick].remaining <= 1e-6 {
            let finished = ready.swap_remove(pick);
            if now > jobs[finished.job].deadline * (1.0 + 1e-9) {
                misses += 1;
            }
        }
        // Admit any jobs released meanwhile.
        while next_release < jobs.len() && jobs[next_release].release <= now {
            ready.push(Active {
                job: next_release,
                remaining: jobs[next_release].actual.as_ops(),
                rate: None,
            });
            next_release += 1;
        }
    }
    if now < horizon {
        charge_idle(horizon - now, &mut idle_energy);
        now = horizon;
    }

    DvsReport {
        total_energy: busy_energy + idle_energy,
        busy_energy,
        idle_energy,
        busy_time,
        jobs_run: jobs.len() as u64,
        deadline_misses: misses,
        horizon: now.max(horizon),
    }
}

/// Guards against degenerate zero rates (empty actual demand).
fn effective_rate(rate: ComputeRate, peak: ComputeRate) -> ComputeRate {
    if rate.as_ops_per_second() <= 0.0 {
        peak
    } else {
        rate.min(peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PeriodicTask;
    use ami_arch::ArchitectureClass;
    use ami_tech::TechnologyNode;

    fn dsp() -> Processor {
        Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130())
    }

    fn audio_set() -> TaskSet {
        TaskSet::personal_audio()
    }

    fn run(policy: DvsPolicy) -> DvsReport {
        simulate_taskset(
            &dsp(),
            &audio_set(),
            policy,
            TimeSpan::from_seconds(5.0),
            42,
        )
    }

    #[test]
    fn all_policies_meet_deadlines_on_feasible_set() {
        for policy in DvsPolicy::all() {
            let report = run(policy);
            assert_eq!(report.deadline_misses, 0, "{policy} missed deadlines");
            assert!(report.jobs_run > 400);
        }
    }

    #[test]
    fn dvs_energy_ordering() {
        let none = run(DvsPolicy::None).total_energy;
        let stretch = run(DvsPolicy::WorstCaseStretch).total_energy;
        let oracle = run(DvsPolicy::Clairvoyant).total_energy;
        assert!(
            stretch < none,
            "WCET stretching must beat full speed: {stretch:?} vs {none:?}"
        );
        assert!(
            oracle <= stretch * 1.000001,
            "the oracle bounds every online policy"
        );
    }

    #[test]
    fn dvs_saves_a_meaningful_fraction() {
        let none = run(DvsPolicy::None).total_energy.as_joules();
        let stretch = run(DvsPolicy::WorstCaseStretch).total_energy.as_joules();
        let saving = 1.0 - stretch / none;
        assert!(
            saving > 0.2,
            "expected >20% saving on a slack-rich set, got {:.1}%",
            100.0 * saving
        );
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = run(DvsPolicy::WorstCaseStretch);
        let b = run(DvsPolicy::WorstCaseStretch);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_vary_actuals_but_not_jobs() {
        let a = simulate_taskset(
            &dsp(),
            &audio_set(),
            DvsPolicy::Clairvoyant,
            TimeSpan::from_seconds(2.0),
            1,
        );
        let b = simulate_taskset(
            &dsp(),
            &audio_set(),
            DvsPolicy::Clairvoyant,
            TimeSpan::from_seconds(2.0),
            2,
        );
        assert_eq!(a.jobs_run, b.jobs_run);
        assert!(a.total_energy != b.total_energy);
    }

    #[test]
    fn dpm_reduces_idle_energy_for_no_dvs() {
        let plain = run(DvsPolicy::None);
        let dpm = Dpm::new(
            Power::from_microwatts(50.0),
            Energy::from_microjoules(5.0),
            TimeSpan::from_millis(1.0),
        );
        let with = simulate_taskset_with_dpm(
            &dsp(),
            &audio_set(),
            DvsPolicy::None,
            TimeSpan::from_seconds(5.0),
            42,
            &dpm,
        );
        assert!(with.idle_energy < plain.idle_energy);
        assert_eq!(with.busy_energy, plain.busy_energy);
    }

    #[test]
    #[should_panic(expected = "peak throughput")]
    fn unschedulable_set_rejected() {
        let set = TaskSet::new(vec![PeriodicTask::new(
            "monster",
            TimeSpan::from_millis(1.0),
            OpCount::from_mega_ops(1e4),
        )]);
        let _ = simulate_taskset(
            &dsp(),
            &set,
            DvsPolicy::None,
            TimeSpan::from_seconds(1.0),
            0,
        );
    }

    #[test]
    fn discrete_levels_meet_deadlines_but_give_back_energy() {
        let horizon = TimeSpan::from_seconds(5.0);
        let cont = run(DvsPolicy::WorstCaseStretch);
        let four = simulate_taskset_with_levels(
            &dsp(),
            &audio_set(),
            DvsPolicy::WorstCaseStretch,
            &FrequencyLadder::four_point(),
            horizon,
            42,
        );
        let two = simulate_taskset_with_levels(
            &dsp(),
            &audio_set(),
            DvsPolicy::WorstCaseStretch,
            &FrequencyLadder::two_point(),
            horizon,
            42,
        );
        assert_eq!(four.deadline_misses, 0);
        assert_eq!(two.deadline_misses, 0);
        // Coarser ladders run faster than needed: more switching energy.
        assert!(cont.busy_energy <= four.busy_energy);
        assert!(four.busy_energy <= two.busy_energy);
        assert!(
            two.busy_energy.as_joules() > 1.2 * cont.busy_energy.as_joules(),
            "the quantization loss should be visible"
        );
    }

    #[test]
    fn oracle_gap_widens_with_workload_variance() {
        // On low-variance audio the WCET-stretch policy is near-oracle;
        // on high-variance video the oracle pulls far ahead — the
        // motivation for prediction-based DVS in the literature.
        let horizon = TimeSpan::from_seconds(5.0);
        let gap = |tasks: &TaskSet| {
            let stretch = simulate_taskset(&dsp(), tasks, DvsPolicy::WorstCaseStretch, horizon, 42);
            let oracle = simulate_taskset(&dsp(), tasks, DvsPolicy::Clairvoyant, horizon, 42);
            stretch.busy_energy.as_joules() / oracle.busy_energy.as_joules()
        };
        let audio_gap = gap(&TaskSet::personal_audio());
        let video_gap = gap(&TaskSet::video_playback());
        assert!(
            video_gap > audio_gap,
            "video oracle gap {video_gap:.2} must exceed audio {audio_gap:.2}"
        );
    }

    #[test]
    fn average_power_is_total_over_horizon() {
        let r = run(DvsPolicy::WorstCaseStretch);
        let expected = r.total_energy.as_joules() / r.horizon.as_seconds();
        assert!((r.average_power().as_watts() - expected).abs() < 1e-12);
    }

    #[test]
    fn sub_ulp_residuals_terminate() {
        // Regression: at 65 nm the personal-audio set used to leave a job
        // with residual ops above the finish threshold but whose service
        // time rounds to zero against a seconds-scale `now` — the slice
        // loop then spun forever. Every policy must complete the 10 s
        // horizon the F4 sweep runs.
        let fast = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n65());
        let tasks = TaskSet::personal_audio();
        for policy in DvsPolicy::all() {
            let report =
                simulate_taskset(&fast, &tasks, policy, TimeSpan::from_seconds(10.0), 2003);
            assert_eq!(
                report.deadline_misses, 0,
                "{policy:?} must meet every deadline"
            );
        }
    }
}
