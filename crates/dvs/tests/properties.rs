//! Property-based tests for DVS policies and the task-set simulator.

use ami_arch::{ArchitectureClass, Processor};
use ami_dvs::{simulate_taskset, DvsPolicy, PeriodicTask, TaskSet};
use ami_tech::TechnologyNode;
use ami_units::{ComputeRate, OpCount, TimeSpan};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = DvsPolicy> {
    prop_oneof![
        Just(DvsPolicy::None),
        Just(DvsPolicy::UtilizationStatic),
        Just(DvsPolicy::WorstCaseStretch),
        Just(DvsPolicy::Clairvoyant),
    ]
}

/// A random feasible task set on the 130 nm DSP (peak 770 Mops).
fn feasible_taskset() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((2.0..100.0f64, 0.01..0.4f64, 0.1..1.0f64), 1..5).prop_map(|specs| {
        // Scale utilizations so the total stays well under 70%.
        let total: f64 = specs.iter().map(|(_, u, _)| u).sum();
        let scale = if total > 0.7 { 0.7 / total } else { 1.0 };
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(idx, (period_ms, util, bcet))| {
                    let period = TimeSpan::from_millis(period_ms);
                    let wcet = OpCount::from_ops(770e6 * util * scale * period.as_seconds());
                    PeriodicTask::new(format!("t{idx}"), period, wcet).with_best_case_fraction(bcet)
                })
                .collect(),
        )
    })
}

proptest! {
    /// Every policy's job rate is bounded by the peak and positive for
    /// positive demand.
    #[test]
    fn job_rate_bounded(
        policy in any_policy(),
        wcet in 1.0..1e9f64,
        frac in 0.01..1.0f64,
        window_ms in 0.1..1000.0f64,
        peak_mops in 1.0..5000.0f64,
        util in 0.0..1.0f64,
    ) {
        let rate = policy.job_rate(
            OpCount::from_ops(wcet),
            OpCount::from_ops(wcet * frac),
            TimeSpan::from_millis(window_ms),
            ComputeRate::from_mops(peak_mops),
            util,
        );
        prop_assert!(rate <= ComputeRate::from_mops(peak_mops));
        prop_assert!(rate.as_ops_per_second() >= 0.0);
    }

    /// On feasible sets: no deadline misses for any policy (preemptive
    /// EDF at ≤90% occupancy), and the dynamic-energy ordering
    /// none ≥ stretch ≥ oracle holds on a leakage-free node. (With
    /// leakage, running below the node's critical speed can cost MORE —
    /// the classic DVS critical-frequency effect — so the ordering is a
    /// statement about switching energy only.)
    #[test]
    fn feasible_sets_meet_deadlines_with_energy_ordering(
        tasks in feasible_taskset(),
        seed in 0u64..100,
    ) {
        let horizon = TimeSpan::from_seconds(2.0);
        // Deadline guarantee: the realistic node.
        let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
        for policy in DvsPolicy::all() {
            let report = simulate_taskset(&dsp, &tasks, policy, horizon, seed);
            prop_assert_eq!(report.deadline_misses, 0, "{} missed", policy);
        }
        // Energy ordering: the leakage-free ablation isolates CV²f.
        let leakless = Processor::new(
            "dsp",
            ArchitectureClass::Dsp,
            TechnologyNode::n130().with_leakage_model(ami_tech::LeakageModel::Off),
        );
        let none = simulate_taskset(&leakless, &tasks, DvsPolicy::None, horizon, seed);
        let stretch =
            simulate_taskset(&leakless, &tasks, DvsPolicy::WorstCaseStretch, horizon, seed);
        let oracle = simulate_taskset(&leakless, &tasks, DvsPolicy::Clairvoyant, horizon, seed);
        prop_assert!(stretch.busy_energy.as_joules() <= none.busy_energy.as_joules() * 1.000001);
        prop_assert!(oracle.busy_energy.as_joules() <= stretch.busy_energy.as_joules() * 1.000001);
    }

    /// The simulation is deterministic in its seed.
    #[test]
    fn simulation_deterministic(tasks in feasible_taskset(), seed in 0u64..50) {
        let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
        let a = simulate_taskset(&dsp, &tasks, DvsPolicy::WorstCaseStretch,
                                 TimeSpan::from_seconds(1.0), seed);
        let b = simulate_taskset(&dsp, &tasks, DvsPolicy::WorstCaseStretch,
                                 TimeSpan::from_seconds(1.0), seed);
        prop_assert_eq!(a, b);
    }

    /// Energy accounting closes: total = busy + idle, and the average
    /// power reproduces total/horizon.
    #[test]
    fn energy_accounting_closes(tasks in feasible_taskset(), seed in 0u64..50) {
        let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
        let r = simulate_taskset(&dsp, &tasks, DvsPolicy::UtilizationStatic,
                                 TimeSpan::from_seconds(1.0), seed);
        let sum = r.busy_energy.as_joules() + r.idle_energy.as_joules();
        prop_assert!((r.total_energy.as_joules() - sum).abs() < 1e-12 * sum.max(1e-12));
        let avg = r.average_power().as_watts();
        prop_assert!((avg - r.total_energy.as_joules() / r.horizon.as_seconds()).abs() < 1e-12);
    }
}
