//! The `quantity!` macro generating one SI newtype per dimension.

/// Defines a quantity newtype over `f64` with validated constructors,
/// same-dimension arithmetic, scalar scaling, SI `Display`, and serde.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, base = $base_doc:literal, unit = $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates a `", stringify!($name),
                "` from a value in ", $base_doc, " (the SI base unit).")]
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN or infinite. Use
            /// [`try_new`](Self::try_new) for a fallible variant.
            #[track_caller]
            pub fn new(value: f64) -> Self {
                match Self::try_new(value) {
                    Ok(q) => q,
                    Err(e) => panic!("{e}"),
                }
            }

            #[doc = concat!("Fallible variant of [`", stringify!($name),
                "::new`](Self::new).")]
            ///
            /// # Errors
            ///
            /// Returns [`QuantityError`](crate::QuantityError) if `value`
            /// is NaN or infinite.
            pub fn try_new(value: f64) -> Result<Self, $crate::QuantityError> {
                if value.is_finite() {
                    Ok(Self(value))
                } else {
                    Err($crate::QuantityError::new(stringify!($name), value))
                }
            }

            #[doc = concat!("Raw value in ", $base_doc, ".")]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// The larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the value is strictly negative.
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }

            /// Total ordering suitable for sorting slices of quantities.
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Dimensionless ratio `self / other`.
            pub fn ratio_to(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&$crate::si::format_si(self.0, $unit))
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl std::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// Defines `impl Mul`/`Div` relations across quantity types, e.g.
/// `cross_op!(Power * TimeSpan = Energy)` produces `Power * TimeSpan`,
/// `TimeSpan * Power`, `Energy / Power` and `Energy / TimeSpan`.
macro_rules! cross_mul {
    ($a:ident * $b:ident = $c:ident) => {
        impl std::ops::Mul<$b> for $a {
            type Output = $c;
            fn mul(self, rhs: $b) -> $c {
                $c::new(self.value() * rhs.value())
            }
        }

        impl std::ops::Mul<$a> for $b {
            type Output = $c;
            fn mul(self, rhs: $a) -> $c {
                $c::new(self.value() * rhs.value())
            }
        }

        impl std::ops::Div<$a> for $c {
            type Output = $b;
            fn div(self, rhs: $a) -> $b {
                $b::new(self.value() / rhs.value())
            }
        }

        impl std::ops::Div<$b> for $c {
            type Output = $a;
            fn div(self, rhs: $b) -> $a {
                $a::new(self.value() / rhs.value())
            }
        }
    };
}
