//! Environmental quantities sensed or exploited by ambient devices.

use crate::Voltage;

/// Boltzmann constant over elementary charge, in volts per kelvin.
const K_OVER_Q: f64 = 8.617_333_262e-5;

quantity! {
    /// Illuminance in lux — the input to photovoltaic harvesting models.
    ///
    /// Typical values: 100–500 lx indoors, 1 000 lx overcast outdoors,
    /// 100 000 lx direct sun.
    Illuminance, base = "lux", unit = "lx"
}

impl Illuminance {
    /// Creates an illuminance from lux (same as [`Illuminance::new`]).
    #[track_caller]
    pub fn from_lux(lx: f64) -> Self {
        Self::new(lx)
    }

    /// This illuminance in lux.
    pub fn as_lux(self) -> f64 {
        self.value()
    }
}

quantity! {
    /// Thermodynamic temperature in kelvin.
    ///
    /// Drives the subthreshold-leakage model (`ami-tech`) and thermoelectric
    /// harvesting (`ami-energy`).
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Temperature;
    ///
    /// let room = Temperature::from_celsius(27.0);
    /// assert!((room.thermal_voltage().as_millivolts() - 25.9).abs() < 0.1);
    /// ```
    Temperature, base = "kelvin", unit = "K"
}

impl Temperature {
    /// Standard 300 K (27 °C) reference used by the leakage models.
    pub const ROOM: Self = Self(300.0);

    /// Creates a temperature from kelvin (same as [`Temperature::new`]).
    #[track_caller]
    pub fn from_kelvin(k: f64) -> Self {
        Self::new(k)
    }

    /// Creates a temperature from degrees Celsius.
    #[track_caller]
    pub fn from_celsius(c: f64) -> Self {
        Self::new(c + 273.15)
    }

    /// This temperature in kelvin.
    pub fn as_kelvin(self) -> f64 {
        self.value()
    }

    /// This temperature in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.value() - 273.15
    }

    /// The thermal voltage `kT/q` at this temperature (≈25.9 mV at 300 K).
    pub fn thermal_voltage(self) -> Voltage {
        Voltage::new(K_OVER_Q * self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Temperature::from_celsius(85.0);
        assert!((t.as_kelvin() - 358.15).abs() < 1e-12);
        assert!((t.as_celsius() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn room_thermal_voltage() {
        let vt = Temperature::ROOM.thermal_voltage();
        assert!((vt.as_millivolts() - 25.852).abs() < 0.01);
    }

    #[test]
    fn illuminance_scale() {
        assert_eq!(Illuminance::from_lux(500.0).as_lux(), 500.0);
        assert!(Illuminance::from_lux(100.0) < Illuminance::from_lux(1000.0));
    }
}
