//! Electrical quantities: voltage, current, charge, capacitance, resistance.

use crate::{Energy, Power, TimeSpan};

quantity! {
    /// Electric potential in volts (supply rails, battery terminal voltage).
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::{Voltage, Current};
    ///
    /// let rail = Voltage::from_volts(1.2);
    /// let draw = Current::from_milliamps(5.0);
    /// assert_eq!((rail * draw).as_milliwatts(), 6.0);
    /// ```
    Voltage, base = "volts", unit = "V"
}

impl Voltage {
    /// Creates a voltage from volts (same as [`Voltage::new`]).
    #[track_caller]
    pub fn from_volts(v: f64) -> Self {
        Self::new(v)
    }

    /// Creates a voltage from millivolts.
    #[track_caller]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// This voltage in volts.
    pub fn as_volts(self) -> f64 {
        self.value()
    }

    /// This voltage in millivolts.
    pub fn as_millivolts(self) -> f64 {
        self.value() * 1e3
    }
}

quantity! {
    /// Electric current in amperes.
    Current, base = "amperes", unit = "A"
}

impl Current {
    /// Creates a current from amperes (same as [`Current::new`]).
    #[track_caller]
    pub fn from_amps(a: f64) -> Self {
        Self::new(a)
    }

    /// Creates a current from milliamperes.
    #[track_caller]
    pub fn from_milliamps(ma: f64) -> Self {
        Self::new(ma * 1e-3)
    }

    /// Creates a current from microamperes.
    #[track_caller]
    pub fn from_microamps(ua: f64) -> Self {
        Self::new(ua * 1e-6)
    }

    /// Creates a current from nanoamperes.
    #[track_caller]
    pub fn from_nanoamps(na: f64) -> Self {
        Self::new(na * 1e-9)
    }

    /// This current in amperes.
    pub fn as_amps(self) -> f64 {
        self.value()
    }

    /// This current in milliamperes.
    pub fn as_milliamps(self) -> f64 {
        self.value() * 1e3
    }

    /// This current in microamperes.
    pub fn as_microamps(self) -> f64 {
        self.value() * 1e6
    }
}

quantity! {
    /// Electric charge in coulombs; battery capacity bookkeeping.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Charge;
    ///
    /// let cell = Charge::from_milliamp_hours(800.0);
    /// assert_eq!(cell.as_coulombs(), 2880.0);
    /// ```
    Charge, base = "coulombs", unit = "C"
}

impl Charge {
    /// Creates a charge from coulombs (same as [`Charge::new`]).
    #[track_caller]
    pub fn from_coulombs(c: f64) -> Self {
        Self::new(c)
    }

    /// Creates a charge from milliampere-hours — the battery datasheet unit.
    #[track_caller]
    pub fn from_milliamp_hours(mah: f64) -> Self {
        Self::new(mah * 3.6)
    }

    /// This charge in coulombs.
    pub fn as_coulombs(self) -> f64 {
        self.value()
    }

    /// This charge in milliampere-hours.
    pub fn as_milliamp_hours(self) -> f64 {
        self.value() / 3.6
    }
}

quantity! {
    /// Capacitance in farads: switched gate capacitance and storage caps.
    Capacitance, base = "farads", unit = "F"
}

impl Capacitance {
    /// Creates a capacitance from farads (same as [`Capacitance::new`]).
    #[track_caller]
    pub fn from_farads(f: f64) -> Self {
        Self::new(f)
    }

    /// Creates a capacitance from millifarads.
    #[track_caller]
    pub fn from_millifarads(mf: f64) -> Self {
        Self::new(mf * 1e-3)
    }

    /// Creates a capacitance from microfarads.
    #[track_caller]
    pub fn from_microfarads(uf: f64) -> Self {
        Self::new(uf * 1e-6)
    }

    /// Creates a capacitance from picofarads.
    #[track_caller]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::new(pf * 1e-12)
    }

    /// Creates a capacitance from femtofarads — the gate-capacitance scale.
    #[track_caller]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// This capacitance in farads.
    pub fn as_farads(self) -> f64 {
        self.value()
    }

    /// This capacitance in femtofarads.
    pub fn as_femtofarads(self) -> f64 {
        self.value() * 1e15
    }

    /// Energy stored at voltage `v`: `½·C·V²`.
    pub fn stored_energy(self, v: Voltage) -> Energy {
        Energy::new(0.5 * self.value() * v.as_volts() * v.as_volts())
    }

    /// Energy of one full charge–discharge switching event, `C·V²` —
    /// the CMOS dynamic-energy kernel.
    pub fn switching_energy(self, v: Voltage) -> Energy {
        Energy::new(self.value() * v.as_volts() * v.as_volts())
    }
}

quantity! {
    /// Resistance in ohms.
    Resistance, base = "ohms", unit = "\u{03a9}"
}

impl Resistance {
    /// Creates a resistance from ohms (same as [`Resistance::new`]).
    #[track_caller]
    pub fn from_ohms(o: f64) -> Self {
        Self::new(o)
    }

    /// Creates a resistance from kilo-ohms.
    #[track_caller]
    pub fn from_kilo_ohms(ko: f64) -> Self {
        Self::new(ko * 1e3)
    }

    /// This resistance in ohms.
    pub fn as_ohms(self) -> f64 {
        self.value()
    }
}

cross_mul!(Voltage * Current = Power);
cross_mul!(Current * TimeSpan = Charge);
cross_mul!(Voltage * Charge = Energy);
cross_mul!(Voltage * Capacitance = Charge);

impl std::ops::Div<Resistance> for Voltage {
    type Output = Current;
    /// Ohm's law: `I = V / R`.
    fn div(self, rhs: Resistance) -> Current {
        Current::new(self.as_volts() / rhs.as_ohms())
    }
}

impl std::ops::Mul<Resistance> for Current {
    type Output = Voltage;
    /// Ohm's law: `V = I·R`.
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage::new(self.as_amps() * rhs.as_ohms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_amp_is_watt() {
        let p: Power = Voltage::from_volts(3.0) * Current::from_amps(2.0);
        assert_eq!(p.as_watts(), 6.0);
        let i: Current = p / Voltage::from_volts(3.0);
        assert_eq!(i.as_amps(), 2.0);
    }

    #[test]
    fn charge_bookkeeping() {
        let q: Charge = Current::from_milliamps(10.0) * TimeSpan::from_hours(2.0);
        assert!((q.as_milliamp_hours() - 20.0).abs() < 1e-9);
        let e: Energy = Voltage::from_volts(3.0) * q;
        assert!((e.as_joules() - 216.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_energy() {
        let c = Capacitance::from_millifarads(100.0);
        let e = c.stored_energy(Voltage::from_volts(2.0));
        assert!((e.as_joules() - 0.2).abs() < 1e-12);
        assert!((c.switching_energy(Voltage::from_volts(2.0)).as_joules() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gate_cap_switching_energy_scale() {
        // A 2 fF gate at 1.2 V switches ~2.9 fJ: the CMOS energy quantum.
        let e = Capacitance::from_femtofarads(2.0).switching_energy(Voltage::from_volts(1.2));
        assert!((e.as_joules() - 2.88e-15).abs() < 1e-20);
    }

    #[test]
    fn ohms_law() {
        let i = Voltage::from_volts(3.3) / Resistance::from_kilo_ohms(1.0);
        assert!((i.as_milliamps() - 3.3).abs() < 1e-12);
        let v = i * Resistance::from_kilo_ohms(1.0);
        assert!((v.as_volts() - 3.3).abs() < 1e-12);
    }

    #[test]
    fn cv_is_q() {
        let q: Charge = Voltage::from_volts(5.0) * Capacitance::from_microfarads(2.0);
        assert!((q.as_coulombs() - 1e-5).abs() < 1e-18);
    }
}
