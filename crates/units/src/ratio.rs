//! Derived efficiency quantities — the slopes on the power–information graph.

use crate::{Area, DataRate, DataVolume, Energy, OpCount, Power};

quantity! {
    /// Energy cost of communicating one bit, in joules per bit.
    ///
    /// Circa 2003, short-range radios spent 10–100 nJ/bit at the antenna
    /// plus overheads; the power–information graph's communication devices
    /// sit on lines of constant `EnergyPerBit`.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::{EnergyPerBit, DataRate};
    ///
    /// let radio = EnergyPerBit::from_nanojoules_per_bit(50.0);
    /// let p = radio * DataRate::from_kilobits_per_second(100.0);
    /// assert_eq!(p.as_milliwatts(), 5.0);
    /// ```
    EnergyPerBit, base = "joules per bit", unit = "J/bit"
}

impl EnergyPerBit {
    /// Creates a cost from joules per bit (same as [`EnergyPerBit::new`]).
    #[track_caller]
    pub fn from_joules_per_bit(jpb: f64) -> Self {
        Self::new(jpb)
    }

    /// Creates a cost from nanojoules per bit — the 2003 radio unit.
    #[track_caller]
    pub fn from_nanojoules_per_bit(njpb: f64) -> Self {
        Self::new(njpb * 1e-9)
    }

    /// Creates a cost from picojoules per bit.
    #[track_caller]
    pub fn from_picojoules_per_bit(pjpb: f64) -> Self {
        Self::new(pjpb * 1e-12)
    }

    /// This cost in joules per bit.
    pub fn as_joules_per_bit(self) -> f64 {
        self.value()
    }

    /// This cost in nanojoules per bit.
    pub fn as_nanojoules_per_bit(self) -> f64 {
        self.value() * 1e9
    }
}

quantity! {
    /// Energy cost of one operation, in joules per operation.
    EnergyPerOp, base = "joules per operation", unit = "J/op"
}

impl EnergyPerOp {
    /// Creates a cost from joules per operation (same as [`EnergyPerOp::new`]).
    #[track_caller]
    pub fn from_joules_per_op(jpo: f64) -> Self {
        Self::new(jpo)
    }

    /// Creates a cost from picojoules per operation — the DSP unit.
    #[track_caller]
    pub fn from_picojoules_per_op(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// This cost in joules per operation.
    pub fn as_joules_per_op(self) -> f64 {
        self.value()
    }

    /// This cost in picojoules per operation.
    pub fn as_picojoules_per_op(self) -> f64 {
        self.value() * 1e12
    }

    /// The reciprocal efficiency (operations per joule ≡ op/s per watt).
    ///
    /// # Panics
    ///
    /// Panics if the cost is zero.
    #[track_caller]
    pub fn to_efficiency(self) -> ComputeEfficiency {
        ComputeEfficiency::new(1.0 / self.value())
    }
}

quantity! {
    /// Computational efficiency in operations per joule (equivalently,
    /// op/s per watt). `MOPS/mW == MOPS/mJ` is the 2003 headline unit; the
    /// flexibility–efficiency gap between ASIC and CPU spans 2–3 decades
    /// of this quantity.
    ComputeEfficiency, base = "operations per joule", unit = "op/J"
}

impl ComputeEfficiency {
    /// Creates an efficiency from operations per joule
    /// (same as [`ComputeEfficiency::new`]).
    #[track_caller]
    pub fn from_ops_per_joule(opj: f64) -> Self {
        Self::new(opj)
    }

    /// Creates an efficiency from MOPS per milliwatt.
    #[track_caller]
    pub fn from_mops_per_milliwatt(mopsmw: f64) -> Self {
        Self::new(mopsmw * 1e9)
    }

    /// This efficiency in operations per joule.
    pub fn as_ops_per_joule(self) -> f64 {
        self.value()
    }

    /// This efficiency in MOPS per milliwatt.
    pub fn as_mops_per_milliwatt(self) -> f64 {
        self.value() / 1e9
    }

    /// The reciprocal energy per operation.
    ///
    /// # Panics
    ///
    /// Panics if the efficiency is zero.
    #[track_caller]
    pub fn to_energy_per_op(self) -> EnergyPerOp {
        EnergyPerOp::new(1.0 / self.value())
    }
}

quantity! {
    /// Areal power density in watts per square metre (harvester output,
    /// die thermal budget).
    PowerDensity, base = "watts per square metre", unit = "W/m\u{00b2}"
}

impl PowerDensity {
    /// Creates a density from watts per square metre
    /// (same as [`PowerDensity::new`]).
    #[track_caller]
    pub fn from_watts_per_square_meter(wm2: f64) -> Self {
        Self::new(wm2)
    }

    /// Creates a density from microwatts per square centimetre — the
    /// energy-harvesting literature unit.
    #[track_caller]
    pub fn from_microwatts_per_square_centimeter(uwcm2: f64) -> Self {
        Self::new(uwcm2 * 1e-2)
    }

    /// This density in watts per square metre.
    pub fn as_watts_per_square_meter(self) -> f64 {
        self.value()
    }

    /// This density in microwatts per square centimetre.
    pub fn as_microwatts_per_square_centimeter(self) -> f64 {
        self.value() * 1e2
    }
}

quantity! {
    /// A dimensionless ratio: activity factors, efficiencies, duty cycles.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Ratio;
    ///
    /// let duty = Ratio::from_percent(1.0);
    /// assert_eq!(duty.as_fraction(), 0.01);
    /// ```
    Ratio, base = "(dimensionless)", unit = ""
}

impl Ratio {
    /// A ratio of exactly one (100 %).
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio from a fraction in `[0, …]`
    /// (same as [`Ratio::new`]).
    #[track_caller]
    pub fn from_fraction(f: f64) -> Self {
        Self::new(f)
    }

    /// Creates a ratio from a percentage.
    #[track_caller]
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }

    /// This ratio as a plain fraction.
    pub fn as_fraction(self) -> f64 {
        self.value()
    }

    /// This ratio as a percentage.
    pub fn as_percent(self) -> f64 {
        self.value() * 100.0
    }

    /// `true` if the ratio lies in the closed unit interval.
    pub fn is_unit_interval(self) -> bool {
        (0.0..=1.0).contains(&self.value())
    }
}

cross_mul!(EnergyPerBit * DataVolume = Energy);
cross_mul!(EnergyPerBit * DataRate = Power);
cross_mul!(EnergyPerOp * OpCount = Energy);
cross_mul!(ComputeEfficiency * Energy = OpCount);
cross_mul!(PowerDensity * Area = Power);

impl std::ops::Mul<Power> for ComputeEfficiency {
    type Output = crate::ComputeRate;
    /// Sustained compute rate at a given power budget.
    fn mul(self, rhs: Power) -> crate::ComputeRate {
        crate::ComputeRate::new(self.value() * rhs.as_watts())
    }
}

impl std::ops::Mul<ComputeEfficiency> for Power {
    type Output = crate::ComputeRate;
    fn mul(self, rhs: ComputeEfficiency) -> crate::ComputeRate {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComputeRate, TimeSpan};

    #[test]
    fn energy_per_bit_times_rate_is_power() {
        let cost = EnergyPerBit::from_nanojoules_per_bit(100.0);
        let p: Power = cost * DataRate::from_megabits_per_second(1.0);
        assert!((p.as_milliwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_per_bit_times_volume_is_energy() {
        let cost = EnergyPerBit::from_nanojoules_per_bit(10.0);
        let e: Energy = cost * DataVolume::from_bytes(100.0);
        assert!((e.as_microjoules() - 8.0).abs() < 1e-12);
        let back: DataVolume = e / cost;
        assert!((back.as_bytes() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_reciprocal_round_trip() {
        let eff = ComputeEfficiency::from_mops_per_milliwatt(10.0);
        let cost = eff.to_energy_per_op();
        assert!((cost.as_picojoules_per_op() - 100.0).abs() < 1e-9);
        let back = cost.to_efficiency();
        assert!((back.as_mops_per_milliwatt() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_times_power_is_rate() {
        let eff = ComputeEfficiency::from_mops_per_milliwatt(50.0);
        let rate: ComputeRate = eff * Power::from_milliwatts(2.0);
        assert!((rate.as_mops() - 100.0).abs() < 1e-9);
        let rate2: ComputeRate = Power::from_milliwatts(2.0) * eff;
        assert_eq!(rate, rate2);
    }

    #[test]
    fn harvester_density_times_area_is_power() {
        let d = PowerDensity::from_microwatts_per_square_centimeter(10.0);
        let p: Power = d * Area::from_square_centimeters(4.0);
        assert!((p.as_microwatts() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_percent_round_trip() {
        let r = Ratio::from_percent(2.5);
        assert_eq!(r.as_fraction(), 0.025);
        assert_eq!(r.as_percent(), 2.5);
        assert!(r.is_unit_interval());
        assert!(!Ratio::from_fraction(1.5).is_unit_interval());
    }

    #[test]
    fn energy_over_time_consistency() {
        // 1 nJ/bit at 1 Mbit/s for 1 s == 1 mJ? No: 1e-9 * 1e6 = 1 mW, * 1 s = 1 mJ.
        let p =
            EnergyPerBit::from_nanojoules_per_bit(1.0) * DataRate::from_megabits_per_second(1.0);
        let e = p * TimeSpan::from_seconds(1.0);
        assert!((e.as_millijoules() - 1.0).abs() < 1e-12);
    }
}
