//! SI-prefix engineering formatting shared by all quantity `Display` impls.

/// One SI prefix step: the multiplier and its symbol.
const PREFIXES: &[(f64, &str)] = &[
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "\u{00b5}"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
];

/// Formats `value` in engineering notation with an SI prefix and `unit`.
///
/// The mantissa is kept in `[1, 1000)` where a prefix exists, printed with
/// up to three significant digits and trailing zeros trimmed. Values outside
/// the femto–tera range fall back to scientific notation.
///
/// # Example
///
/// ```
/// use ami_units::si::format_si;
///
/// assert_eq!(format_si(0.0213, "W"), "21.3 mW");
/// assert_eq!(format_si(0.0, "J"), "0 J");
/// assert_eq!(format_si(-4.7e-6, "A"), "-4.7 µA");
/// ```
pub fn format_si(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    let magnitude = value.abs();
    let mut chosen: Option<(f64, &str)> = None;
    for &(mult, sym) in PREFIXES {
        if magnitude >= mult * 0.9995 {
            chosen = Some((mult, sym));
        }
    }
    match chosen {
        Some((mult, sym)) if magnitude < mult * 1e3 * 0.9995 => {
            let mantissa = value / mult;
            format!("{} {}{}", trim(mantissa), sym, unit)
        }
        _ => format!("{value:.3e} {unit}"),
    }
}

/// Prints a mantissa with three significant digits, trimming zeros.
fn trim(mantissa: f64) -> String {
    let digits = if mantissa.abs() >= 99.95 {
        0
    } else if mantissa.abs() >= 9.995 {
        1
    } else {
        2
    };
    let s = format!("{mantissa:.digits$}");
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_and_kilo() {
        assert_eq!(format_si(1.0, "W"), "1 W");
        assert_eq!(format_si(1500.0, "W"), "1.5 kW");
        assert_eq!(format_si(999.4, "W"), "999 W");
    }

    #[test]
    fn micro_and_nano() {
        assert_eq!(format_si(3.3e-6, "W"), "3.3 µW");
        assert_eq!(format_si(4.2e-9, "J"), "4.2 nJ");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(format_si(-0.25, "W"), "-250 mW");
    }

    #[test]
    fn boundary_rounds_up_to_next_prefix() {
        // 999.6 mW would print as "1000 mW"; the formatter promotes it.
        assert_eq!(format_si(0.9996, "W"), "1 W");
    }

    #[test]
    fn out_of_range_uses_scientific() {
        assert_eq!(format_si(1e20, "W"), "1.000e20 W");
        assert!(format_si(1e-18, "W").contains('e'));
    }

    #[test]
    fn three_significant_digits() {
        assert_eq!(format_si(123.456, "Hz"), "123 Hz");
        assert_eq!(format_si(12.3456, "Hz"), "12.3 Hz");
        assert_eq!(format_si(1.23456, "Hz"), "1.23 Hz");
    }
}
