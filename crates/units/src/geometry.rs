//! Geometric quantities: lengths (radio range, feature size) and areas
//! (die area, harvester aperture).

quantity! {
    /// Length in metres. Doubles as radio range and CMOS feature size.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Length;
    ///
    /// let feature = Length::from_nanometers(130.0);
    /// assert_eq!(format!("{feature}"), "130 nm");
    /// ```
    Length, base = "metres", unit = "m"
}

impl Length {
    /// Creates a length from metres (same as [`Length::new`]).
    #[track_caller]
    pub fn from_meters(m: f64) -> Self {
        Self::new(m)
    }

    /// Creates a length from millimetres.
    #[track_caller]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometres.
    #[track_caller]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from nanometres — the technology-node unit.
    #[track_caller]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// This length in metres.
    pub fn as_meters(self) -> f64 {
        self.value()
    }

    /// This length in micrometres.
    pub fn as_micrometers(self) -> f64 {
        self.value() * 1e6
    }

    /// This length in nanometres.
    pub fn as_nanometers(self) -> f64 {
        self.value() * 1e9
    }
}

quantity! {
    /// Area in square metres: die area, solar-cell aperture, antenna area.
    Area, base = "square metres", unit = "m\u{00b2}"
}

impl Area {
    /// Creates an area from square metres (same as [`Area::new`]).
    #[track_caller]
    pub fn from_square_meters(m2: f64) -> Self {
        Self::new(m2)
    }

    /// Creates an area from square centimetres — the harvester unit.
    #[track_caller]
    pub fn from_square_centimeters(cm2: f64) -> Self {
        Self::new(cm2 * 1e-4)
    }

    /// Creates an area from square millimetres — the die-area unit.
    #[track_caller]
    pub fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Creates an area from square micrometres — the cell-area unit.
    #[track_caller]
    pub fn from_square_micrometers(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// This area in square metres.
    pub fn as_square_meters(self) -> f64 {
        self.value()
    }

    /// This area in square centimetres.
    pub fn as_square_centimeters(self) -> f64 {
        self.value() * 1e4
    }

    /// This area in square millimetres.
    pub fn as_square_millimeters(self) -> f64 {
        self.value() * 1e6
    }

    /// This area in square micrometres.
    pub fn as_square_micrometers(self) -> f64 {
        self.value() * 1e12
    }
}

impl std::ops::Mul for Length {
    type Output = Area;
    fn mul(self, rhs: Self) -> Area {
        Area::new(self.value() * rhs.value())
    }
}

impl std::ops::Div<Length> for Area {
    type Output = Length;
    fn div(self, rhs: Length) -> Length {
        Length::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_squared_is_area() {
        let a: Area = Length::from_millimeters(3.0) * Length::from_millimeters(4.0);
        assert!((a.as_square_millimeters() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn area_conversions() {
        let a = Area::from_square_centimeters(2.0);
        assert!((a.as_square_millimeters() - 200.0).abs() < 1e-9);
        assert!((Area::from_square_micrometers(1e6).as_square_millimeters() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feature_sizes() {
        assert!((Length::from_nanometers(90.0).as_micrometers() - 0.09).abs() < 1e-12);
    }
}
