//! Power and energy — the y-axis of the power–information graph.

use crate::TimeSpan;

quantity! {
    /// Power in watts.
    ///
    /// The defining axis of the Ambient Intelligence device taxonomy:
    /// autonomous nodes live around a microwatt, personal nodes around a
    /// milliwatt-to-hundred-milliwatt budget, and static nodes at watts.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::{Power, TimeSpan};
    ///
    /// let standby = Power::from_microwatts(2.0);
    /// let day = TimeSpan::from_days(1.0);
    /// assert!((standby * day).as_millijoules() - 172.8 < 1e-9);
    /// ```
    Power, base = "watts", unit = "W"
}

impl Power {
    /// Creates a power from watts (same as [`Power::new`]).
    #[track_caller]
    pub fn from_watts(w: f64) -> Self {
        Self::new(w)
    }

    /// Creates a power from milliwatts.
    #[track_caller]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[track_caller]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[track_caller]
    pub fn from_nanowatts(nw: f64) -> Self {
        Self::new(nw * 1e-9)
    }

    /// Creates a power from kilowatts.
    #[track_caller]
    pub fn from_kilowatts(kw: f64) -> Self {
        Self::new(kw * 1e3)
    }

    /// This power in watts.
    pub fn as_watts(self) -> f64 {
        self.value()
    }

    /// This power in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.value() * 1e3
    }

    /// This power in microwatts.
    pub fn as_microwatts(self) -> f64 {
        self.value() * 1e6
    }

    /// This power in nanowatts.
    pub fn as_nanowatts(self) -> f64 {
        self.value() * 1e9
    }
}

quantity! {
    /// Energy in joules.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Energy;
    ///
    /// let aa_cell = Energy::from_watt_hours(2.6);
    /// assert_eq!(aa_cell.as_joules(), 9360.0);
    /// ```
    Energy, base = "joules", unit = "J"
}

impl Energy {
    /// Creates an energy from joules (same as [`Energy::new`]).
    #[track_caller]
    pub fn from_joules(j: f64) -> Self {
        Self::new(j)
    }

    /// Creates an energy from millijoules.
    #[track_caller]
    pub fn from_millijoules(mj: f64) -> Self {
        Self::new(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    #[track_caller]
    pub fn from_microjoules(uj: f64) -> Self {
        Self::new(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    #[track_caller]
    pub fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    #[track_caller]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Creates an energy from watt-hours.
    #[track_caller]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * 3600.0)
    }

    /// Creates an energy from milliwatt-hours.
    #[track_caller]
    pub fn from_milliwatt_hours(mwh: f64) -> Self {
        Self::new(mwh * 3.6)
    }

    /// This energy in joules.
    pub fn as_joules(self) -> f64 {
        self.value()
    }

    /// This energy in millijoules.
    pub fn as_millijoules(self) -> f64 {
        self.value() * 1e3
    }

    /// This energy in microjoules.
    pub fn as_microjoules(self) -> f64 {
        self.value() * 1e6
    }

    /// This energy in nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.value() * 1e9
    }

    /// This energy in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.value() * 1e12
    }

    /// This energy in watt-hours.
    pub fn as_watt_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// How long this energy sustains a constant `load`.
    ///
    /// # Panics
    ///
    /// Panics if `load` is zero (the lifetime would be infinite); check
    /// with [`Power::ZERO`] first if the load can vanish.
    #[track_caller]
    pub fn sustains_for(self, load: Power) -> TimeSpan {
        TimeSpan::new(self.value() / load.as_watts())
    }
}

cross_mul!(Power * TimeSpan = Energy);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_milliwatts(100.0) * TimeSpan::from_hours(1.0);
        assert!((e.as_watt_hours() - 0.1).abs() < 1e-12);
        // Commuted.
        let e2 = TimeSpan::from_hours(1.0) * Power::from_milliwatts(100.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_divided_recovers_factors() {
        let e = Energy::from_joules(10.0);
        let p: Power = e / TimeSpan::from_seconds(5.0);
        assert_eq!(p.as_watts(), 2.0);
        let t: TimeSpan = e / Power::from_watts(2.0);
        assert_eq!(t.as_seconds(), 5.0);
    }

    #[test]
    fn sustains_for_matches_division() {
        let battery = Energy::from_watt_hours(1.0);
        let load = Power::from_milliwatts(10.0);
        assert!((battery.sustains_for(load).as_hours() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid TimeSpan")]
    fn sustains_for_zero_load_panics() {
        let _ = Energy::from_joules(1.0).sustains_for(Power::ZERO);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Power::from_microwatts(1500.0).as_milliwatts(), 1.5);
        assert_eq!(Energy::from_picojoules(2000.0).as_nanojoules(), 2.0);
        assert_eq!(Energy::from_milliwatt_hours(1000.0).as_watt_hours(), 1.0);
    }

    #[test]
    fn display_spans_the_three_classes() {
        assert_eq!(format!("{}", Power::from_microwatts(1.0)), "1 µW");
        assert_eq!(format!("{}", Power::from_milliwatts(1.0)), "1 mW");
        assert_eq!(format!("{}", Power::from_watts(1.0)), "1 W");
    }

    #[test]
    fn clamp_and_minmax() {
        let p = Power::from_watts(5.0);
        assert_eq!(
            p.clamp(Power::ZERO, Power::from_watts(2.0)),
            Power::from_watts(2.0)
        );
        assert_eq!(p.min(Power::from_watts(1.0)).as_watts(), 1.0);
        assert_eq!(p.max(Power::from_watts(9.0)).as_watts(), 9.0);
        assert!((-p).is_negative());
    }
}
