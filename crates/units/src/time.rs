//! Time spans and frequencies.

quantity! {
    /// A span of time in seconds.
    ///
    /// Used both for physical durations (a radio burst, a battery lifetime)
    /// and for simulation time in `ami-sim`.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::TimeSpan;
    ///
    /// let frame = TimeSpan::from_millis(24.0);
    /// assert_eq!(frame.as_seconds(), 0.024);
    /// assert_eq!(format!("{frame}"), "24 ms");
    /// ```
    TimeSpan, base = "seconds", unit = "s"
}

impl TimeSpan {
    /// Creates a span from seconds (same as [`TimeSpan::new`]).
    #[track_caller]
    pub fn from_seconds(s: f64) -> Self {
        Self::new(s)
    }

    /// Creates a span from milliseconds.
    #[track_caller]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Creates a span from microseconds.
    #[track_caller]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a span from nanoseconds.
    #[track_caller]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a span from minutes.
    #[track_caller]
    pub fn from_minutes(min: f64) -> Self {
        Self::new(min * 60.0)
    }

    /// Creates a span from hours.
    #[track_caller]
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// Creates a span from days.
    #[track_caller]
    pub fn from_days(d: f64) -> Self {
        Self::new(d * 86_400.0)
    }

    /// Creates a span from (Julian) years of 365.25 days.
    #[track_caller]
    pub fn from_years(y: f64) -> Self {
        Self::new(y * 365.25 * 86_400.0)
    }

    /// This span in seconds.
    pub fn as_seconds(self) -> f64 {
        self.value()
    }

    /// This span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.value() * 1e3
    }

    /// This span in microseconds.
    pub fn as_micros(self) -> f64 {
        self.value() * 1e6
    }

    /// This span in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.value() * 1e9
    }

    /// This span in minutes.
    pub fn as_minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// This span in hours.
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// This span in days.
    pub fn as_days(self) -> f64 {
        self.value() / 86_400.0
    }

    /// This span in Julian years.
    pub fn as_years(self) -> f64 {
        self.value() / (365.25 * 86_400.0)
    }
}

quantity! {
    /// A frequency in hertz: clock rates, sample rates, carrier frequencies.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::Frequency;
    ///
    /// let clk = Frequency::from_megahertz(32.0);
    /// assert_eq!(clk.period().as_nanos(), 31.25);
    /// ```
    Frequency, base = "hertz", unit = "Hz"
}

impl Frequency {
    /// Creates a frequency from hertz (same as [`Frequency::new`]).
    #[track_caller]
    pub fn from_hertz(hz: f64) -> Self {
        Self::new(hz)
    }

    /// Creates a frequency from kilohertz.
    #[track_caller]
    pub fn from_kilohertz(khz: f64) -> Self {
        Self::new(khz * 1e3)
    }

    /// Creates a frequency from megahertz.
    #[track_caller]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[track_caller]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// This frequency in hertz.
    pub fn as_hertz(self) -> f64 {
        self.value()
    }

    /// This frequency in kilohertz.
    pub fn as_kilohertz(self) -> f64 {
        self.value() / 1e3
    }

    /// This frequency in megahertz.
    pub fn as_megahertz(self) -> f64 {
        self.value() / 1e6
    }

    /// This frequency in gigahertz.
    pub fn as_gigahertz(self) -> f64 {
        self.value() / 1e9
    }

    /// The period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero (the period is infinite).
    #[track_caller]
    pub fn period(self) -> TimeSpan {
        TimeSpan::new(1.0 / self.value())
    }

    /// Number of cycles elapsed during `span` (dimensionless).
    pub fn cycles_in(self, span: TimeSpan) -> f64 {
        self.value() * span.as_seconds()
    }
}

impl std::ops::Mul<TimeSpan> for Frequency {
    type Output = f64;
    fn mul(self, rhs: TimeSpan) -> f64 {
        self.cycles_in(rhs)
    }
}

impl std::ops::Mul<Frequency> for TimeSpan {
    type Output = f64;
    fn mul(self, rhs: Frequency) -> f64 {
        rhs.cycles_in(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        let t = TimeSpan::from_hours(2.5);
        assert!((t.as_minutes() - 150.0).abs() < 1e-12);
        assert!((t.as_days() - 2.5 / 24.0).abs() < 1e-12);
        assert!((TimeSpan::from_days(t.as_days()).as_seconds() - t.as_seconds()).abs() < 1e-9);
    }

    #[test]
    fn years_use_julian_calendar() {
        assert_eq!(TimeSpan::from_years(1.0).as_days(), 365.25);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = TimeSpan::from_millis(10.0);
        let b = TimeSpan::from_millis(2.0);
        assert_eq!((a + b).as_millis(), 12.0);
        assert_eq!((a - b).as_millis(), 8.0);
        assert_eq!((a * 3.0).as_millis(), 30.0);
        assert_eq!(a / b, 5.0);
        assert_eq!((-b).as_millis(), -2.0);
        assert!(b < a);
    }

    #[test]
    fn frequency_period_and_cycles() {
        let f = Frequency::from_kilohertz(10.0);
        assert!((f.period().as_micros() - 100.0).abs() < 1e-12);
        assert_eq!(f.cycles_in(TimeSpan::from_seconds(2.0)), 20_000.0);
        assert_eq!(f * TimeSpan::from_millis(1.0), 10.0);
        assert_eq!(TimeSpan::from_millis(1.0) * f, 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid TimeSpan")]
    fn nan_panics() {
        let _ = TimeSpan::new(f64::NAN);
    }

    #[test]
    fn try_new_reports_error() {
        assert!(TimeSpan::try_new(f64::INFINITY).is_err());
        assert!(TimeSpan::try_new(1.0).is_ok());
    }

    #[test]
    fn sum_of_spans() {
        let total: TimeSpan = (1..=4).map(|i| TimeSpan::from_seconds(f64::from(i))).sum();
        assert_eq!(total.as_seconds(), 10.0);
    }

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(format!("{}", TimeSpan::from_micros(15.0)), "15 µs");
        assert_eq!(format!("{}", Frequency::from_gigahertz(2.4)), "2.4 GHz");
    }
}
