//! Error type shared by all fallible quantity constructors.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a quantity from an invalid `f64`.
///
/// # Example
///
/// ```
/// use ami_units::{Power, QuantityError};
///
/// let err: QuantityError = Power::try_new(f64::NAN).unwrap_err();
/// assert_eq!(err.quantity(), "Power");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantityError {
    quantity: &'static str,
    value: f64,
}

impl QuantityError {
    /// Creates an error for the named quantity and offending value.
    pub fn new(quantity: &'static str, value: f64) -> Self {
        Self { quantity, value }
    }

    /// Name of the quantity type whose construction failed.
    pub fn quantity(&self) -> &'static str {
        self.quantity
    }

    /// The offending raw value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} value: {}", self.quantity, self.value)
    }
}

impl Error for QuantityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_quantity_and_value() {
        let err = QuantityError::new("Power", f64::INFINITY);
        assert_eq!(err.to_string(), "invalid Power value: inf");
        assert_eq!(err.quantity(), "Power");
        assert!(err.value().is_infinite());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantityError>();
    }
}
