//! Information quantities — the x-axis of the power–information graph.

use crate::TimeSpan;

quantity! {
    /// Information rate in bits per second.
    ///
    /// The x-axis of the Aarts–Roovers power–information graph: every
    /// ambient-intelligence function is located by the information rate it
    /// must sustain and the power it may burn doing so.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_units::{DataRate, TimeSpan};
    ///
    /// let audio = DataRate::from_kilobits_per_second(192.0);
    /// let volume = audio * TimeSpan::from_minutes(1.0);
    /// assert_eq!(volume.as_kilobits(), 11_520.0);
    /// ```
    DataRate, base = "bits per second", unit = "bit/s"
}

impl DataRate {
    /// Creates a rate from bits per second (same as [`DataRate::new`]).
    #[track_caller]
    pub fn from_bits_per_second(bps: f64) -> Self {
        Self::new(bps)
    }

    /// Creates a rate from kilobits per second.
    #[track_caller]
    pub fn from_kilobits_per_second(kbps: f64) -> Self {
        Self::new(kbps * 1e3)
    }

    /// Creates a rate from megabits per second.
    #[track_caller]
    pub fn from_megabits_per_second(mbps: f64) -> Self {
        Self::new(mbps * 1e6)
    }

    /// Creates a rate from gigabits per second.
    #[track_caller]
    pub fn from_gigabits_per_second(gbps: f64) -> Self {
        Self::new(gbps * 1e9)
    }

    /// This rate in bits per second.
    pub fn as_bits_per_second(self) -> f64 {
        self.value()
    }

    /// This rate in kilobits per second.
    pub fn as_kilobits_per_second(self) -> f64 {
        self.value() / 1e3
    }

    /// This rate in megabits per second.
    pub fn as_megabits_per_second(self) -> f64 {
        self.value() / 1e6
    }

    /// Time to transfer `volume` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[track_caller]
    pub fn time_to_transfer(self, volume: DataVolume) -> TimeSpan {
        TimeSpan::new(volume.as_bits() / self.value())
    }
}

quantity! {
    /// A volume of information in bits.
    DataVolume, base = "bits", unit = "bit"
}

impl DataVolume {
    /// Creates a volume from bits (same as [`DataVolume::new`]).
    #[track_caller]
    pub fn from_bits(bits: f64) -> Self {
        Self::new(bits)
    }

    /// Creates a volume from bytes.
    #[track_caller]
    pub fn from_bytes(bytes: f64) -> Self {
        Self::new(bytes * 8.0)
    }

    /// Creates a volume from kilobits.
    #[track_caller]
    pub fn from_kilobits(kb: f64) -> Self {
        Self::new(kb * 1e3)
    }

    /// Creates a volume from megabits.
    #[track_caller]
    pub fn from_megabits(mb: f64) -> Self {
        Self::new(mb * 1e6)
    }

    /// This volume in bits.
    pub fn as_bits(self) -> f64 {
        self.value()
    }

    /// This volume in bytes.
    pub fn as_bytes(self) -> f64 {
        self.value() / 8.0
    }

    /// This volume in kilobits.
    pub fn as_kilobits(self) -> f64 {
        self.value() / 1e3
    }

    /// This volume in megabits.
    pub fn as_megabits(self) -> f64 {
        self.value() / 1e6
    }
}

quantity! {
    /// Computation rate in operations per second.
    ///
    /// Circa-2003 literature quotes MOPS; [`ComputeRate::from_mops`] is the
    /// conventional constructor.
    ComputeRate, base = "operations per second", unit = "op/s"
}

impl ComputeRate {
    /// Creates a rate from operations per second (same as [`ComputeRate::new`]).
    #[track_caller]
    pub fn from_ops_per_second(ops: f64) -> Self {
        Self::new(ops)
    }

    /// Creates a rate from millions of operations per second (MOPS).
    #[track_caller]
    pub fn from_mops(mops: f64) -> Self {
        Self::new(mops * 1e6)
    }

    /// Creates a rate from billions of operations per second (GOPS).
    #[track_caller]
    pub fn from_gops(gops: f64) -> Self {
        Self::new(gops * 1e9)
    }

    /// This rate in operations per second.
    pub fn as_ops_per_second(self) -> f64 {
        self.value()
    }

    /// This rate in MOPS.
    pub fn as_mops(self) -> f64 {
        self.value() / 1e6
    }

    /// This rate in GOPS.
    pub fn as_gops(self) -> f64 {
        self.value() / 1e9
    }
}

quantity! {
    /// A count of operations (dimensionful so that `OpCount / TimeSpan`
    /// and `Energy / OpCount` type-check).
    OpCount, base = "operations", unit = "op"
}

impl OpCount {
    /// Creates a count from operations (same as [`OpCount::new`]).
    #[track_caller]
    pub fn from_ops(ops: f64) -> Self {
        Self::new(ops)
    }

    /// Creates a count from millions of operations.
    #[track_caller]
    pub fn from_mega_ops(mops: f64) -> Self {
        Self::new(mops * 1e6)
    }

    /// This count in operations.
    pub fn as_ops(self) -> f64 {
        self.value()
    }
}

cross_mul!(DataRate * TimeSpan = DataVolume);
cross_mul!(ComputeRate * TimeSpan = OpCount);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_times_time_is_volume() {
        let v: DataVolume = DataRate::from_megabits_per_second(2.0) * TimeSpan::from_seconds(3.0);
        assert_eq!(v.as_megabits(), 6.0);
        let r: DataRate = v / TimeSpan::from_seconds(3.0);
        assert_eq!(r.as_megabits_per_second(), 2.0);
    }

    #[test]
    fn transfer_time() {
        let r = DataRate::from_kilobits_per_second(250.0);
        let t = r.time_to_transfer(DataVolume::from_bytes(125.0));
        assert!((t.as_millis() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn compute_rate_conversions() {
        assert_eq!(ComputeRate::from_mops(1000.0).as_gops(), 1.0);
        let ops: OpCount = ComputeRate::from_mops(10.0) * TimeSpan::from_seconds(2.0);
        assert_eq!(ops.as_ops(), 2e7);
    }

    #[test]
    fn bytes_are_eight_bits() {
        assert_eq!(DataVolume::from_bytes(2.0).as_bits(), 16.0);
        assert_eq!(DataVolume::from_bits(16.0).as_bytes(), 2.0);
    }
}
