//! Physical-quantity newtypes for the `ambience` toolkit.
//!
//! Every quantity that flows through the power–information analysis of the
//! Ambient Intelligence design space (Aarts & Roovers, DATE 2003) is a
//! dedicated newtype wrapping an `f64` in SI base units. The type system
//! then enforces dimensional correctness: `Power * TimeSpan` yields
//! [`Energy`], `Voltage * Current` yields [`Power`], dividing an [`Energy`]
//! by a [`DataVolume`] yields an [`EnergyPerBit`], and so on. Mixing
//! dimensions is a compile error, which is precisely the class of mistake a
//! power-budget tool must not make.
//!
//! # Example
//!
//! ```
//! use ami_units::{Power, TimeSpan, Energy};
//!
//! let radio = Power::from_milliwatts(21.0);
//! let burst = TimeSpan::from_millis(4.0);
//! let energy: Energy = radio * burst;
//! assert!((energy.as_microjoules() - 84.0).abs() < 1e-9);
//! assert_eq!(format!("{radio}"), "21 mW");
//! ```
//!
//! All constructors validate that the value is finite; see each type's
//! `new` for the panic conditions and `try_new` for the fallible variant.

pub mod error;
pub mod si;

#[macro_use]
mod macros;

mod electrical;
mod environment;
mod geometry;
mod information;
mod power_energy;
mod ratio;
mod time;

pub use electrical::{Capacitance, Charge, Current, Resistance, Voltage};
pub use environment::{Illuminance, Temperature};
pub use error::QuantityError;
pub use geometry::{Area, Length};
pub use information::{ComputeRate, DataRate, DataVolume, OpCount};
pub use power_energy::{Energy, Power};
pub use ratio::{ComputeEfficiency, EnergyPerBit, EnergyPerOp, PowerDensity, Ratio};
pub use time::{Frequency, TimeSpan};
