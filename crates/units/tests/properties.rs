//! Property-based tests for the quantity algebra.

use ami_units::{
    Capacitance, Charge, Current, DataRate, DataVolume, Energy, EnergyPerBit, Frequency, Power,
    Ratio, TimeSpan, Voltage,
};
use proptest::prelude::*;

/// Finite, reasonably-scaled positive values that avoid float-overflow noise.
fn pos() -> impl Strategy<Value = f64> {
    1e-12..1e12f64
}

fn finite() -> impl Strategy<Value = f64> {
    -1e12..1e12f64
}

proptest! {
    #[test]
    fn construction_accepts_all_finite(v in finite()) {
        prop_assert!(Power::try_new(v).is_ok());
        prop_assert!(Energy::try_new(v).is_ok());
        prop_assert!(TimeSpan::try_new(v).is_ok());
    }

    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        let x = Power::new(a) + Power::new(b);
        let y = Power::new(b) + Power::new(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn add_then_sub_is_identity(a in pos(), b in pos()) {
        let x = (Energy::new(a) + Energy::new(b)) - Energy::new(b);
        prop_assert!((x.as_joules() - a).abs() <= 1e-9 * a.abs().max(b.abs()));
    }

    #[test]
    fn power_time_energy_round_trip(p in pos(), t in pos()) {
        let e = Power::new(p) * TimeSpan::new(t);
        let p2 = e / TimeSpan::new(t);
        prop_assert!((p2.as_watts() - p).abs() <= 1e-12 * p);
        let t2 = e / Power::new(p);
        prop_assert!((t2.as_seconds() - t).abs() <= 1e-12 * t);
    }

    #[test]
    fn volt_amp_second_consistency(v in pos(), i in pos(), t in pos()) {
        // V·I·t computed two ways must agree: (V·I)·t and V·(I·t).
        let e1: Energy = (Voltage::new(v) * Current::new(i)) * TimeSpan::new(t);
        let q: Charge = Current::new(i) * TimeSpan::new(t);
        let e2: Energy = Voltage::new(v) * q;
        let tol = 1e-9 * e1.as_joules().abs().max(1.0);
        prop_assert!((e1.as_joules() - e2.as_joules()).abs() <= tol);
    }

    #[test]
    fn ordering_is_consistent_with_values(a in finite(), b in finite()) {
        let (pa, pb) = (Power::new(a), Power::new(b));
        prop_assert_eq!(pa < pb, a < b);
        prop_assert_eq!(pa.max(pb).as_watts(), a.max(b));
        prop_assert_eq!(pa.min(pb).as_watts(), a.min(b));
    }

    #[test]
    fn scalar_distributes(a in pos(), b in pos(), k in pos()) {
        let lhs = (Energy::new(a) + Energy::new(b)) * k;
        let rhs = Energy::new(a) * k + Energy::new(b) * k;
        let tol = 1e-9 * lhs.as_joules().abs().max(1.0);
        prop_assert!((lhs.as_joules() - rhs.as_joules()).abs() <= tol);
    }

    #[test]
    fn unit_conversion_round_trips(v in pos()) {
        prop_assert!((Power::from_milliwatts(v).as_milliwatts() - v).abs() <= 1e-12 * v);
        prop_assert!((Energy::from_watt_hours(v).as_watt_hours() - v).abs() <= 1e-12 * v);
        prop_assert!((TimeSpan::from_hours(v).as_hours() - v).abs() <= 1e-12 * v);
        prop_assert!((Charge::from_milliamp_hours(v).as_milliamp_hours() - v).abs() <= 1e-12 * v);
        prop_assert!((DataVolume::from_bytes(v).as_bytes() - v).abs() <= 1e-12 * v);
    }

    #[test]
    fn frequency_period_inverts(f in 1e-6..1e12f64) {
        let freq = Frequency::new(f);
        let p = freq.period();
        prop_assert!((p.as_seconds() * f - 1.0).abs() <= 1e-12);
    }

    #[test]
    fn capacitor_energy_quadratic_in_voltage(c in 1e-15..1.0f64, v in 1e-3..100.0f64) {
        let cap = Capacitance::new(c);
        let e1 = cap.stored_energy(Voltage::new(v));
        let e2 = cap.stored_energy(Voltage::new(2.0 * v));
        // Doubling the voltage quadruples the stored energy.
        prop_assert!((e2.as_joules() / e1.as_joules() - 4.0).abs() <= 1e-9);
    }

    #[test]
    fn energy_per_bit_power_identity(cost in 1e-12..1e-3f64, rate in 1.0..1e9f64) {
        let p: Power = EnergyPerBit::new(cost) * DataRate::new(rate);
        prop_assert!((p.as_watts() - cost * rate).abs() <= 1e-9 * (cost * rate));
    }

    #[test]
    fn ratio_percent_round_trip(pct in 0.0..1000.0f64) {
        let r = Ratio::from_percent(pct);
        prop_assert!((r.as_percent() - pct).abs() <= 1e-9 * pct.max(1.0));
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(pos(), 0..50)) {
        let total: Power = values.iter().map(|&v| Power::new(v)).sum();
        let folded = values.iter().fold(0.0, |acc, v| acc + v);
        let tol = 1e-9 * folded.max(1.0);
        prop_assert!((total.as_watts() - folded).abs() <= tol);
    }

    #[test]
    fn display_never_panics_and_is_nonempty(v in finite()) {
        let s = format!("{}", Power::new(v));
        prop_assert!(!s.is_empty());
        prop_assert!(s.ends_with('W') || s.contains("W"));
    }

    #[test]
    fn serde_round_trip(v in finite()) {
        let p = Power::new(v);
        let json = serde_json_round_trip(p);
        prop_assert_eq!(json, p);
    }
}

/// Serde round-trip through the compact display; uses `serde`'s derived
/// newtype representation (a bare number).
fn serde_json_round_trip(p: Power) -> Power {
    // Hand-rolled: the derived impl serializes the inner f64 transparently.
    // We avoid a serde_json dependency by driving the Serializer manually.
    use serde::Serialize;
    struct Cap(f64);
    impl serde::Serializer for &mut Cap {
        type Ok = ();
        type Error = std::fmt::Error;
        type SerializeSeq = serde::ser::Impossible<(), Self::Error>;
        type SerializeTuple = serde::ser::Impossible<(), Self::Error>;
        type SerializeTupleStruct = serde::ser::Impossible<(), Self::Error>;
        type SerializeTupleVariant = serde::ser::Impossible<(), Self::Error>;
        type SerializeMap = serde::ser::Impossible<(), Self::Error>;
        type SerializeStruct = serde::ser::Impossible<(), Self::Error>;
        type SerializeStructVariant = serde::ser::Impossible<(), Self::Error>;

        fn serialize_f64(self, v: f64) -> Result<(), Self::Error> {
            self.0 = v;
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            value: &T,
        ) -> Result<(), Self::Error> {
            value.serialize(self)
        }

        // Everything else is unreachable for this newtype.
        fn serialize_bool(self, _: bool) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_i8(self, _: i8) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_i16(self, _: i16) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_i32(self, _: i32) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_i64(self, _: i64) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_u8(self, _: u8) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_u16(self, _: u16) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_u32(self, _: u32) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_u64(self, _: u64) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_f32(self, _: f32) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_char(self, _: char) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_str(self, _: &str) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_bytes(self, _: &[u8]) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_none(self) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_some<T: Serialize + ?Sized>(self, _: &T) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_unit(self) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
        ) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: &T,
        ) -> Result<(), Self::Error> {
            unreachable!()
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, Self::Error> {
            unreachable!()
        }
        fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, Self::Error> {
            unreachable!()
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error> {
            unreachable!()
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error> {
            unreachable!()
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, Self::Error> {
            unreachable!()
        }
        fn serialize_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStruct, Self::Error> {
            unreachable!()
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error> {
            unreachable!()
        }
    }

    let mut cap = Cap(f64::NAN);
    p.serialize(&mut cap).expect("newtype serializes as f64");
    Power::new(cap.0)
}
