//! Technology-node parameters and the dynamic/leakage power models.

use ami_units::{Capacitance, Current, Energy, Frequency, Length, Power, Temperature, Voltage};
use serde::{Deserialize, Serialize};

/// Leakage-model selector, the A1 ablation knob.
///
/// [`LeakageModel::Off`] reproduces the pre-130 nm mental model in which
/// static power is negligible; [`LeakageModel::Subthreshold`] is the
/// realistic model that dominates conclusions at 90/65 nm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LeakageModel {
    /// Ignore leakage entirely (the classical CV²f-only view).
    Off,
    /// Subthreshold leakage with DIBL supply sensitivity and
    /// doubling-per-10-kelvin temperature dependence.
    #[default]
    Subthreshold,
}

/// One CMOS process corner, circa the 2003 ITRS window.
///
/// All numbers are *calibration constants*: representative of published
/// 2001–2004 values for a general-purpose logic process, chosen so that the
/// derived figures (energy/gate-switch, leakage/gate, FO4-limited clock)
/// land in the ranges the DATE 2003 community quoted. Each accessor
/// documents its provenance. The struct is immutable; derive variants with
/// [`TechnologyNode::with_leakage_model`]-style builders.
///
/// # Example
///
/// ```
/// use ami_tech::TechnologyNode;
///
/// let node = TechnologyNode::n90();
/// assert!((node.feature_size().as_nanometers() - 90.0).abs() < 1e-9);
/// // ~3.5 fF switched per average gate at 90 nm.
/// let e = node.dynamic_energy_per_gate(node.vdd_nominal());
/// assert!(e.as_joules() > 1e-15 && e.as_joules() < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    name: String,
    feature: Length,
    vdd_nominal: Voltage,
    vth: Voltage,
    /// Effective switched capacitance per average logic gate, local wiring
    /// included.
    gate_cap: Capacitance,
    /// Subthreshold leakage per gate at nominal Vdd and 300 K.
    leak_per_gate: Current,
    /// Logic density in gates per square millimetre.
    gate_density: f64,
    /// Clock of a 20-FO4 pipeline at nominal Vdd.
    f_max_nominal: Frequency,
    /// Velocity-saturation exponent of the alpha-power delay law (1..2).
    alpha_sat: f64,
    /// DIBL coefficient: volts of Vth reduction per volt of Vdd.
    dibl: f64,
    /// Subthreshold swing at 300 K (volts per decade of current).
    swing: Voltage,
    leakage_model: LeakageModel,
}

impl TechnologyNode {
    /// Builds a node from explicit parameters.
    ///
    /// Prefer the named constructors ([`TechnologyNode::n250`] …
    /// [`TechnologyNode::n65`]) unless you are modelling a custom process.
    ///
    /// # Panics
    ///
    /// Panics if `vth >= vdd_nominal`, if `gate_density`, `alpha_sat` or
    /// `dibl` are not finite and positive, or if any quantity is negative.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        feature: Length,
        vdd_nominal: Voltage,
        vth: Voltage,
        gate_cap: Capacitance,
        leak_per_gate: Current,
        gate_density: f64,
        f_max_nominal: Frequency,
        alpha_sat: f64,
        dibl: f64,
        swing: Voltage,
    ) -> Self {
        assert!(
            vth.as_volts() > 0.0 && vth < vdd_nominal,
            "threshold voltage must be positive and below nominal Vdd"
        );
        assert!(
            gate_density.is_finite() && gate_density > 0.0,
            "gate density must be positive"
        );
        assert!(
            (1.0..=2.0).contains(&alpha_sat),
            "alpha-power exponent must lie in [1, 2]"
        );
        assert!(
            dibl.is_finite() && (0.0..1.0).contains(&dibl),
            "DIBL coefficient must lie in [0, 1)"
        );
        assert!(
            !gate_cap.is_negative() && !leak_per_gate.is_negative() && swing.as_volts() > 0.0,
            "capacitance, leakage and swing must be non-negative"
        );
        Self {
            name: name.into(),
            feature,
            vdd_nominal,
            vth,
            gate_cap,
            leak_per_gate,
            gate_density,
            f_max_nominal,
            alpha_sat,
            dibl,
            swing,
            leakage_model: LeakageModel::default(),
        }
    }

    /// The 250 nm node (≈1998 production, entry point of the 2003 roadmap).
    pub fn n250() -> Self {
        Self::new(
            "250nm",
            Length::from_nanometers(250.0),
            Voltage::from_volts(2.5),
            Voltage::from_volts(0.55),
            Capacitance::from_femtofarads(10.0),
            Current::from_nanoamps(0.01),
            30e3,
            Frequency::from_megahertz(400.0),
            1.6,
            0.04,
            Voltage::from_millivolts(85.0),
        )
    }

    /// The 180 nm node (≈2000 production).
    pub fn n180() -> Self {
        Self::new(
            "180nm",
            Length::from_nanometers(180.0),
            Voltage::from_volts(1.8),
            Voltage::from_volts(0.45),
            Capacitance::from_femtofarads(7.0),
            Current::from_nanoamps(0.1),
            60e3,
            Frequency::from_megahertz(550.0),
            1.5,
            0.06,
            Voltage::from_millivolts(88.0),
        )
    }

    /// The 130 nm node (2003's volume workhorse; the keynote's present).
    pub fn n130() -> Self {
        Self::new(
            "130nm",
            Length::from_nanometers(130.0),
            Voltage::from_volts(1.2),
            Voltage::from_volts(0.35),
            Capacitance::from_femtofarads(5.0),
            Current::from_nanoamps(1.0),
            120e3,
            Frequency::from_megahertz(770.0),
            1.4,
            0.08,
            Voltage::from_millivolts(90.0),
        )
    }

    /// The 90 nm node (2004–2005 ramp; the keynote's near future).
    pub fn n90() -> Self {
        Self::new(
            "90nm",
            Length::from_nanometers(90.0),
            Voltage::from_volts(1.0),
            Voltage::from_volts(0.30),
            Capacitance::from_femtofarads(3.5),
            Current::from_nanoamps(10.0),
            250e3,
            Frequency::from_gigahertz(1.1),
            1.3,
            0.10,
            Voltage::from_millivolts(95.0),
        )
    }

    /// The 65 nm node (the far edge of the keynote's horizon).
    pub fn n65() -> Self {
        Self::new(
            "65nm",
            Length::from_nanometers(65.0),
            Voltage::from_volts(0.9),
            Voltage::from_volts(0.25),
            Capacitance::from_femtofarads(2.5),
            Current::from_nanoamps(40.0),
            500e3,
            Frequency::from_gigahertz(1.5),
            1.25,
            0.12,
            Voltage::from_millivolts(100.0),
        )
    }

    /// Node name, e.g. `"130nm"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Drawn feature size.
    pub fn feature_size(&self) -> Length {
        self.feature
    }

    /// Nominal supply voltage.
    pub fn vdd_nominal(&self) -> Voltage {
        self.vdd_nominal
    }

    /// Long-channel threshold voltage at nominal supply.
    pub fn threshold(&self) -> Voltage {
        self.vth
    }

    /// Effective switched capacitance per average gate.
    pub fn gate_capacitance(&self) -> Capacitance {
        self.gate_cap
    }

    /// Logic density in gates per square millimetre.
    pub fn gate_density_per_mm2(&self) -> f64 {
        self.gate_density
    }

    /// Clock of the 20-FO4 reference pipeline at nominal supply.
    pub fn f_max_nominal(&self) -> Frequency {
        self.f_max_nominal
    }

    /// The subthreshold swing (volts per decade of leakage current).
    pub fn subthreshold_swing(&self) -> Voltage {
        self.swing
    }

    /// The active leakage-model selector.
    pub fn leakage_model(&self) -> LeakageModel {
        self.leakage_model
    }

    /// Returns a copy with the given leakage model (the A1 ablation).
    pub fn with_leakage_model(mut self, model: LeakageModel) -> Self {
        self.leakage_model = model;
        self
    }

    /// Energy of one gate switching event at supply `vdd`: `C·V²`.
    pub fn dynamic_energy_per_gate(&self, vdd: Voltage) -> Energy {
        self.gate_cap.switching_energy(vdd)
    }

    /// Dynamic power of `gates` gates clocked at `freq` with switching
    /// activity `activity` (fraction of gates toggling per cycle) at
    /// supply `vdd`: `α·N·C·V²·f`.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]` or `gates` is negative.
    pub fn dynamic_power(&self, gates: f64, activity: f64, vdd: Voltage, freq: Frequency) -> Power {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity factor must lie in [0, 1]"
        );
        assert!(gates >= 0.0, "gate count must be non-negative");
        Power::new(
            activity * gates * self.dynamic_energy_per_gate(vdd).as_joules() * freq.as_hertz(),
        )
    }

    /// Subthreshold leakage current of one gate at supply `vdd` and
    /// temperature `temp`.
    ///
    /// Model: the calibrated 300 K nominal-Vdd leakage, scaled by
    /// a DIBL term `10^(λ·(Vdd−Vnom)/S)` and a doubling per 10 K.
    /// Returns zero when the model is [`LeakageModel::Off`].
    pub fn leakage_current_per_gate(&self, vdd: Voltage, temp: Temperature) -> Current {
        match self.leakage_model {
            LeakageModel::Off => Current::ZERO,
            LeakageModel::Subthreshold => {
                let dv = vdd.as_volts() - self.vdd_nominal.as_volts();
                let dibl_factor = 10f64.powf(self.dibl * dv / self.swing.as_volts());
                let temp_factor = 2f64.powf((temp.as_kelvin() - 300.0) / 10.0);
                Current::new(self.leak_per_gate.as_amps() * dibl_factor * temp_factor)
            }
        }
    }

    /// Static (leakage) power of `gates` gates at `vdd` and `temp`.
    ///
    /// # Panics
    ///
    /// Panics if `gates` is negative.
    pub fn leakage_power(&self, gates: f64, vdd: Voltage, temp: Temperature) -> Power {
        assert!(gates >= 0.0, "gate count must be non-negative");
        Power::new(gates * self.leakage_current_per_gate(vdd, temp).as_amps() * vdd.as_volts())
    }

    /// Total power: dynamic plus leakage.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::dynamic_power`].
    pub fn total_power(
        &self,
        gates: f64,
        activity: f64,
        vdd: Voltage,
        freq: Frequency,
        temp: Temperature,
    ) -> Power {
        self.dynamic_power(gates, activity, vdd, freq) + self.leakage_power(gates, vdd, temp)
    }

    /// Maximum clock at supply `vdd` via the alpha-power law:
    /// `f(V) = f_nom · [(V−Vth)^α / V] / [(Vnom−Vth)^α / Vnom]`.
    ///
    /// Returns zero at or below threshold — the device no longer switches.
    pub fn frequency_at(&self, vdd: Voltage) -> Frequency {
        let v = vdd.as_volts();
        let vth = self.vth.as_volts();
        if v <= vth {
            return Frequency::ZERO;
        }
        let vnom = self.vdd_nominal.as_volts();
        let speed = |v: f64| (v - vth).powf(self.alpha_sat) / v;
        Frequency::new(self.f_max_nominal.as_hertz() * speed(v) / speed(vnom))
    }

    /// The lowest supply able to sustain `freq`, found by bisection on
    /// the (monotonic) alpha-power law; the core DVS primitive.
    ///
    /// Returns `None` if `freq` exceeds the nominal-supply maximum.
    pub fn min_vdd_for(&self, freq: Frequency) -> Option<Voltage> {
        if freq > self.f_max_nominal {
            return None;
        }
        if freq == Frequency::ZERO {
            return Some(self.vth);
        }
        let (mut lo, mut hi) = (self.vth.as_volts(), self.vdd_nominal.as_volts());
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.frequency_at(Voltage::new(mid)) < freq {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Voltage::new(hi))
    }
}

impl std::fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (Vdd {}, Vth {}, {} gates/mm\u{00b2})",
            self.name, self.vdd_nominal, self.vth, self.gate_density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_nodes() -> Vec<TechnologyNode> {
        vec![
            TechnologyNode::n250(),
            TechnologyNode::n180(),
            TechnologyNode::n130(),
            TechnologyNode::n90(),
            TechnologyNode::n65(),
        ]
    }

    #[test]
    fn dynamic_energy_shrinks_with_scaling() {
        let nodes = all_nodes();
        for pair in nodes.windows(2) {
            let e_old = pair[0].dynamic_energy_per_gate(pair[0].vdd_nominal());
            let e_new = pair[1].dynamic_energy_per_gate(pair[1].vdd_nominal());
            assert!(
                e_new < e_old,
                "energy per switch must fall from {} to {}",
                pair[0].name(),
                pair[1].name()
            );
        }
    }

    #[test]
    fn leakage_grows_explosively_with_scaling() {
        let nodes = all_nodes();
        let leak_250 = nodes[0]
            .leakage_current_per_gate(nodes[0].vdd_nominal(), Temperature::ROOM)
            .as_amps();
        let leak_65 = nodes[4]
            .leakage_current_per_gate(nodes[4].vdd_nominal(), Temperature::ROOM)
            .as_amps();
        // Three-plus orders of magnitude across the roadmap window.
        assert!(leak_65 / leak_250 > 1e3);
    }

    #[test]
    fn leakage_doubles_every_ten_kelvin() {
        let n = TechnologyNode::n90();
        let i300 = n.leakage_current_per_gate(n.vdd_nominal(), Temperature::from_kelvin(300.0));
        let i310 = n.leakage_current_per_gate(n.vdd_nominal(), Temperature::from_kelvin(310.0));
        assert!((i310.as_amps() / i300.as_amps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_off_is_zero() {
        let n = TechnologyNode::n65().with_leakage_model(LeakageModel::Off);
        assert_eq!(
            n.leakage_power(1e6, n.vdd_nominal(), Temperature::ROOM),
            Power::ZERO
        );
    }

    #[test]
    fn dibl_reduces_leakage_at_lower_vdd() {
        let n = TechnologyNode::n90();
        let low = n.leakage_current_per_gate(Voltage::from_volts(0.7), Temperature::ROOM);
        let nom = n.leakage_current_per_gate(n.vdd_nominal(), Temperature::ROOM);
        assert!(low < nom);
    }

    #[test]
    fn dynamic_power_formula() {
        let n = TechnologyNode::n130();
        // 1M gates, 10% activity, nominal Vdd, 100 MHz.
        let p = n.dynamic_power(1e6, 0.1, n.vdd_nominal(), Frequency::from_megahertz(100.0));
        // 0.1 * 1e6 * 5fF*1.44V² * 1e8 = 0.1*1e6*7.2e-15*1e8 = 72 mW.
        assert!((p.as_milliwatts() - 72.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "activity factor")]
    fn activity_out_of_range_panics() {
        let n = TechnologyNode::n130();
        let _ = n.dynamic_power(1.0, 1.5, n.vdd_nominal(), Frequency::from_megahertz(1.0));
    }

    #[test]
    fn frequency_at_nominal_matches_fmax() {
        for n in all_nodes() {
            let f = n.frequency_at(n.vdd_nominal());
            assert!((f.as_hertz() / n.f_max_nominal().as_hertz() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn frequency_zero_at_threshold() {
        let n = TechnologyNode::n130();
        assert_eq!(n.frequency_at(n.threshold()), Frequency::ZERO);
        assert_eq!(n.frequency_at(Voltage::from_volts(0.1)), Frequency::ZERO);
    }

    #[test]
    fn frequency_monotonic_in_vdd() {
        let n = TechnologyNode::n90();
        let mut last = Frequency::ZERO;
        for step in 1..=10 {
            let v = Voltage::new(n.threshold().as_volts() + 0.07 * f64::from(step));
            let f = n.frequency_at(v);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn min_vdd_inverts_frequency_at() {
        let n = TechnologyNode::n130();
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let target = Frequency::new(n.f_max_nominal().as_hertz() * frac);
            let v = n.min_vdd_for(target).expect("reachable frequency");
            let achieved = n.frequency_at(v);
            assert!(
                achieved >= target * 0.999,
                "bisection must meet the target frequency"
            );
            assert!(v <= n.vdd_nominal());
        }
    }

    #[test]
    fn min_vdd_rejects_overclock() {
        let n = TechnologyNode::n130();
        assert!(n
            .min_vdd_for(Frequency::new(n.f_max_nominal().as_hertz() * 1.01))
            .is_none());
    }

    #[test]
    fn dvs_cubic_power_saving() {
        // Running at half frequency and the matching reduced Vdd must save
        // substantially more than the linear (frequency-only) factor.
        let n = TechnologyNode::n130();
        let f_half = Frequency::new(n.f_max_nominal().as_hertz() / 2.0);
        let v_half = n.min_vdd_for(f_half).unwrap();
        let p_full = n.dynamic_power(1e6, 0.15, n.vdd_nominal(), n.f_max_nominal());
        let p_dvs = n.dynamic_power(1e6, 0.15, v_half, f_half);
        let gain = p_full.as_watts() / p_dvs.as_watts();
        assert!(gain > 3.0, "expected super-linear gain, got {gain:.2}");
    }

    #[test]
    #[should_panic(expected = "threshold voltage")]
    fn vth_above_vdd_rejected() {
        let _ = TechnologyNode::new(
            "bad",
            Length::from_nanometers(100.0),
            Voltage::from_volts(1.0),
            Voltage::from_volts(1.2),
            Capacitance::from_femtofarads(3.0),
            Current::from_nanoamps(1.0),
            1e5,
            Frequency::from_gigahertz(1.0),
            1.3,
            0.1,
            Voltage::from_millivolts(90.0),
        );
    }

    #[test]
    fn display_mentions_name() {
        assert!(TechnologyNode::n130().to_string().contains("130nm"));
    }
}
