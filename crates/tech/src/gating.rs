//! Power gating: the 2003 answer to the leakage problem.
//!
//! Sleep transistors cut an idle block's leakage by orders of magnitude at
//! the price of wake-up latency and energy (re-charging the virtual rail)
//! plus an area tax. Gating is what lets a 90/65 nm design behave like an
//! older node while idle — the mitigation for everything ablation A1
//! exposes.

use crate::node::TechnologyNode;
use ami_units::{Energy, Power, Temperature, TimeSpan};
use serde::{Deserialize, Serialize};

/// A sleep-transistor power gate wrapped around a logic block.
///
/// # Example
///
/// ```
/// use ami_tech::{PowerGate, TechnologyNode};
/// use ami_units::Temperature;
///
/// let node = TechnologyNode::n65();
/// let gate = PowerGate::sleep_transistor_2003();
/// let awake = node.leakage_power(100e3, node.vdd_nominal(), Temperature::ROOM);
/// let gated = gate.gated_leakage(&node, 100e3, Temperature::ROOM);
/// assert!(awake.as_watts() / gated.as_watts() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerGate {
    /// Leakage reduction factor while gated (≥ 1).
    reduction: f64,
    /// Time to restore the virtual rail on wake-up.
    wake_latency: TimeSpan,
    /// Virtual-rail recharge energy per gate equivalent, at nominal Vdd.
    wake_energy_per_gate: Energy,
}

impl PowerGate {
    /// Creates a gate from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `reduction < 1`, or latency/energy are negative.
    pub fn new(reduction: f64, wake_latency: TimeSpan, wake_energy_per_gate: Energy) -> Self {
        assert!(
            reduction.is_finite() && reduction >= 1.0,
            "reduction factor must be >= 1"
        );
        assert!(!wake_latency.is_negative(), "latency must be non-negative");
        assert!(
            !wake_energy_per_gate.is_negative(),
            "wake energy must be non-negative"
        );
        Self {
            reduction,
            wake_latency,
            wake_energy_per_gate,
        }
    }

    /// A 2003-class MTCMOS sleep transistor: 500× leakage reduction,
    /// 10 µs wake, ~quarter of a gate's switching energy to recharge the
    /// virtual rail per gate.
    pub fn sleep_transistor_2003() -> Self {
        Self::new(500.0, TimeSpan::from_micros(10.0), Energy::from_femto(2.0))
    }

    /// Leakage-reduction factor while gated.
    pub fn reduction(&self) -> f64 {
        self.reduction
    }

    /// Wake-up latency.
    pub fn wake_latency(&self) -> TimeSpan {
        self.wake_latency
    }

    /// Residual leakage of `gates` gates on `node` while gated.
    pub fn gated_leakage(&self, node: &TechnologyNode, gates: f64, temp: Temperature) -> Power {
        node.leakage_power(gates, node.vdd_nominal(), temp) / self.reduction
    }

    /// Energy of one wake-up for a block of `gates` gates.
    pub fn wake_energy(&self, gates: f64) -> Energy {
        assert!(gates >= 0.0, "gate count must be non-negative");
        self.wake_energy_per_gate * gates
    }

    /// The idle duration beyond which gating a block of `gates` gates on
    /// `node` pays off: wake energy divided by the leakage saved.
    ///
    /// # Panics
    ///
    /// Panics if the node leaks nothing (gating can never pay off).
    pub fn breakeven_idle(&self, node: &TechnologyNode, gates: f64, temp: Temperature) -> TimeSpan {
        let ungated = node.leakage_power(gates, node.vdd_nominal(), temp);
        let saved = ungated - self.gated_leakage(node, gates, temp);
        assert!(
            saved > Power::ZERO,
            "gating cannot pay off on a leakage-free node"
        );
        self.wake_energy(gates) / saved
    }

    /// Average idle power of a gated block woken every `cycle` for
    /// `active` (during which it leaks ungated), gated the rest.
    ///
    /// # Panics
    ///
    /// Panics if `active + wake latency` exceeds `cycle`.
    pub fn duty_cycled_leakage(
        &self,
        node: &TechnologyNode,
        gates: f64,
        temp: Temperature,
        cycle: TimeSpan,
        active: TimeSpan,
    ) -> Power {
        assert!(
            active + self.wake_latency <= cycle,
            "active time plus wake latency must fit in the cycle"
        );
        let ungated = node.leakage_power(gates, node.vdd_nominal(), temp);
        let awake = active + self.wake_latency;
        let energy = ungated * awake
            + self.gated_leakage(node, gates, temp) * (cycle - awake)
            + self.wake_energy(gates);
        energy / cycle
    }
}

/// Helper so the preset reads naturally: femtojoules.
trait FemtoEnergy {
    fn from_femto(fj: f64) -> Energy;
}

impl FemtoEnergy for Energy {
    fn from_femto(fj: f64) -> Energy {
        Energy::new(fj * 1e-15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_restores_older_node_idle_behaviour() {
        // The design rule of the era: a gated 65 nm block idles like
        // ungated 180 nm silicon (or better).
        let n65 = TechnologyNode::n65();
        let n180 = TechnologyNode::n180();
        let gate = PowerGate::sleep_transistor_2003();
        let gated65 = gate.gated_leakage(&n65, 100e3, Temperature::ROOM);
        let idle180 = n180.leakage_power(100e3, n180.vdd_nominal(), Temperature::ROOM);
        assert!(gated65 <= idle180);
    }

    #[test]
    fn breakeven_is_sub_millisecond_at_65nm() {
        // 65 nm leaks so hard that gating pays off almost immediately.
        let node = TechnologyNode::n65();
        let gate = PowerGate::sleep_transistor_2003();
        let be = gate.breakeven_idle(&node, 100e3, Temperature::ROOM);
        assert!(be.as_millis() < 1.0, "breakeven {be}");
    }

    #[test]
    fn breakeven_grows_on_low_leakage_nodes() {
        let gate = PowerGate::sleep_transistor_2003();
        let be_old = gate.breakeven_idle(&TechnologyNode::n250(), 100e3, Temperature::ROOM);
        let be_new = gate.breakeven_idle(&TechnologyNode::n65(), 100e3, Temperature::ROOM);
        assert!(be_old > be_new * 100.0);
    }

    #[test]
    fn duty_cycled_leakage_between_bounds() {
        let node = TechnologyNode::n90();
        let gate = PowerGate::sleep_transistor_2003();
        let gates = 50e3;
        let cycle = TimeSpan::from_millis(100.0);
        let active = TimeSpan::from_millis(1.0);
        let avg = gate.duty_cycled_leakage(&node, gates, Temperature::ROOM, cycle, active);
        let floor = gate.gated_leakage(&node, gates, Temperature::ROOM);
        let ceiling = node.leakage_power(gates, node.vdd_nominal(), Temperature::ROOM);
        assert!(avg > floor && avg < ceiling);
        // At a 1% duty the average sits near the gated floor.
        assert!(avg.as_watts() < 0.05 * ceiling.as_watts());
    }

    #[test]
    #[should_panic(expected = "wake latency must fit")]
    fn overlong_active_rejected() {
        let gate = PowerGate::sleep_transistor_2003();
        let _ = gate.duty_cycled_leakage(
            &TechnologyNode::n90(),
            1e3,
            Temperature::ROOM,
            TimeSpan::from_micros(5.0),
            TimeSpan::from_micros(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "reduction factor")]
    fn sub_unity_reduction_rejected() {
        let _ = PowerGate::new(0.5, TimeSpan::ZERO, Energy::ZERO);
    }
}
