//! Intrinsic computational efficiency (ICE) — the technology ceiling.
//!
//! The power–information analysis needs an anchor: how many operations per
//! joule can silicon deliver *at best* in a given process? Following the
//! convention of the early-2000s low-power literature, we define an
//! "operation" as a 32-bit-datapath RISC/DSP-class operation and charge it
//! an equivalent number of gate switching events. A hardwired (ASIC)
//! datapath pays only this intrinsic cost; programmable architectures pay
//! a multiplicative *flexibility overhead* on top (modelled in `ami-arch`).

use crate::TechnologyNode;
use ami_units::{ComputeEfficiency, EnergyPerOp, Voltage};

/// Equivalent gate switching events charged per 32-bit operation.
///
/// Calibration: a 32-bit ripple/carry-select adder plus operand routing is
/// a few hundred gate equivalents at ~50 % activity; 250 switching events
/// per op puts the 130 nm ASIC bound at ≈50 MOPS/mW, consistent with
/// published dedicated-datapath silicon of the era.
pub const GATE_SWITCHES_PER_OP: f64 = 250.0;

/// Energy of one intrinsic (ASIC-bound) operation at supply `vdd`.
///
/// # Example
///
/// ```
/// use ami_tech::{ice, TechnologyNode};
///
/// let n = TechnologyNode::n130();
/// let e = ice::intrinsic_energy_per_op(&n, n.vdd_nominal());
/// // 250 switches × 7.2 fJ ≈ 1.8 pJ/op at 130 nm.
/// assert!(e.as_picojoules_per_op() > 1.0 && e.as_picojoules_per_op() < 3.0);
/// ```
pub fn intrinsic_energy_per_op(node: &TechnologyNode, vdd: Voltage) -> EnergyPerOp {
    EnergyPerOp::new(GATE_SWITCHES_PER_OP * node.dynamic_energy_per_gate(vdd).as_joules())
}

/// Intrinsic computational efficiency at supply `vdd`: the reciprocal of
/// [`intrinsic_energy_per_op`], in operations per joule (≡ op/s per watt).
///
/// # Example
///
/// ```
/// use ami_tech::{intrinsic_efficiency, TechnologyNode};
///
/// let n90 = TechnologyNode::n90();
/// let n250 = TechnologyNode::n250();
/// let e90 = intrinsic_efficiency(&n90, n90.vdd_nominal());
/// let e250 = intrinsic_efficiency(&n250, n250.vdd_nominal());
/// // Scaling buys more than an order of magnitude from 250 nm to 90 nm.
/// assert!(e90.as_ops_per_joule() / e250.as_ops_per_joule() > 10.0);
/// ```
pub fn intrinsic_efficiency(node: &TechnologyNode, vdd: Voltage) -> ComputeEfficiency {
    intrinsic_energy_per_op(node, vdd).to_efficiency()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ice_at_130nm_matches_2003_anchor() {
        let n = TechnologyNode::n130();
        let ice = intrinsic_efficiency(&n, n.vdd_nominal());
        let mops_per_mw = ice.as_mops_per_milliwatt();
        // Published dedicated-silicon numbers of the era: tens of MOPS/mW.
        assert!(
            (10.0..1000.0).contains(&mops_per_mw),
            "130 nm ICE out of calibration window: {mops_per_mw:.1} MOPS/mW"
        );
    }

    #[test]
    fn ice_improves_monotonically_across_roadmap() {
        let nodes = [
            TechnologyNode::n250(),
            TechnologyNode::n180(),
            TechnologyNode::n130(),
            TechnologyNode::n90(),
            TechnologyNode::n65(),
        ];
        let mut last = 0.0;
        for n in &nodes {
            let ice = intrinsic_efficiency(n, n.vdd_nominal()).as_ops_per_joule();
            assert!(ice > last, "{} regressed", n.name());
            last = ice;
        }
    }

    #[test]
    fn voltage_scaling_raises_efficiency() {
        // Dropping Vdd trades speed for efficiency: the essence of DVS.
        let n = TechnologyNode::n130();
        let nominal = intrinsic_efficiency(&n, n.vdd_nominal());
        let scaled = intrinsic_efficiency(&n, Voltage::from_volts(0.8));
        assert!(scaled > nominal);
    }

    #[test]
    fn energy_and_efficiency_are_reciprocal() {
        let n = TechnologyNode::n90();
        let e = intrinsic_energy_per_op(&n, n.vdd_nominal());
        let eff = intrinsic_efficiency(&n, n.vdd_nominal());
        assert!((e.as_joules_per_op() * eff.as_ops_per_joule() - 1.0).abs() < 1e-12);
    }
}
