//! Process variation: the within-die spread that made statistical timing
//! a DATE 2003 headline topic.
//!
//! Threshold voltage varies die-to-die and within-die; frequency responds
//! roughly linearly through the alpha-power law while subthreshold
//! leakage responds *exponentially* — a few tens of millivolts of σ(Vth)
//! turn a deterministic leakage number into a long-tailed lognormal. The
//! [`VariationModel`] samples correlated (Vth-driven) frequency/leakage
//! pairs so parametric yield can be estimated by Monte Carlo
//! (`ami-sim::replicate`).

use crate::node::TechnologyNode;
use ami_units::{Frequency, Power, Temperature, Voltage};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Gaussian Vth variation around a node's nominal threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the die-mean threshold voltage.
    sigma_vth: Voltage,
}

/// One sampled die.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieSample {
    /// The sampled threshold shift (positive = slower, leakier the other way).
    pub delta_vth: Voltage,
    /// Maximum clock of the reference pipeline on this die.
    pub f_max: Frequency,
    /// Leakage power of the reference block on this die.
    pub leakage: Power,
}

impl VariationModel {
    /// Creates a model with the given σ(Vth).
    ///
    /// # Panics
    ///
    /// Panics if the σ is negative.
    pub fn new(sigma_vth: Voltage) -> Self {
        assert!(!sigma_vth.is_negative(), "sigma must be non-negative");
        Self { sigma_vth }
    }

    /// The circa-2003 die-to-die spread: σ(Vth) = 20 mV.
    pub fn typical_2003() -> Self {
        Self::new(Voltage::from_millivolts(20.0))
    }

    /// σ(Vth).
    pub fn sigma_vth(&self) -> Voltage {
        self.sigma_vth
    }

    /// Draws one standard-normal variate (Box–Muller on the shared RNG).
    fn standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Samples one die of `node` with `gates` gates at `temp`: a Vth
    /// shift drives both the achievable clock (alpha-power law with the
    /// shifted threshold) and the leakage (exponential in −ΔVth over the
    /// subthreshold swing).
    pub fn sample_die(
        &self,
        node: &TechnologyNode,
        gates: f64,
        temp: Temperature,
        rng: &mut StdRng,
    ) -> DieSample {
        let z = Self::standard_normal(rng);
        let delta = self.sigma_vth.as_volts() * z;
        // Frequency: recompute the alpha-power law with a shifted Vth by
        // evaluating at an effectively shifted supply (V − ΔVth ≡ V at
        // Vth + Δ): f(V; Vth+Δ) = f(V−Δ; Vth).
        let vdd = node.vdd_nominal();
        let shifted = Voltage::new(vdd.as_volts() - delta);
        let f_max = node.frequency_at(shifted);
        // Leakage: exponential in −ΔVth with the node's subthreshold swing
        // (decade per swing volt): I ∝ 10^(−Δ/S).
        let swing = node.subthreshold_swing().as_volts();
        let leak_factor = 10f64.powf(-delta / swing);
        let leakage = node.leakage_power(gates, vdd, temp) * leak_factor;
        DieSample {
            delta_vth: Voltage::new(delta),
            f_max,
            leakage,
        }
    }

    /// Monte-Carlo parametric yield: the fraction of `samples` dies that
    /// meet `f_min` AND stay under `leak_max`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn parametric_yield(
        &self,
        node: &TechnologyNode,
        gates: f64,
        temp: Temperature,
        f_min: Frequency,
        leak_max: Power,
        samples: usize,
        seed: u64,
    ) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let mut rng = ami_sim_rng(seed);
        let mut pass = 0usize;
        for _ in 0..samples {
            let die = self.sample_die(node, gates, temp, &mut rng);
            if die.f_max >= f_min && die.leakage <= leak_max {
                pass += 1;
            }
        }
        pass as f64 / samples as f64
    }

    /// [`parametric_yield`](Self::parametric_yield) for several
    /// `(f_min, leak_max)` constraint pairs at once: the `samples` dies
    /// are drawn exactly once and every pair is judged against the same
    /// population, so each returned yield is bit-identical to a solo
    /// call with the same `seed` — at 1/N of the Monte-Carlo work.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn parametric_yield_many(
        &self,
        node: &TechnologyNode,
        gates: f64,
        temp: Temperature,
        constraints: &[(Frequency, Power)],
        samples: usize,
        seed: u64,
    ) -> Vec<f64> {
        assert!(samples > 0, "need at least one sample");
        let mut rng = ami_sim_rng(seed);
        let mut pass = vec![0usize; constraints.len()];
        for _ in 0..samples {
            let die = self.sample_die(node, gates, temp, &mut rng);
            for (count, &(f_min, leak_max)) in pass.iter_mut().zip(constraints) {
                if die.f_max >= f_min && die.leakage <= leak_max {
                    *count += 1;
                }
            }
        }
        pass.into_iter()
            .map(|count| count as f64 / samples as f64)
            .collect()
    }
}

/// Local seeded-RNG constructor (mirrors `ami_sim::sim_rng` without the
/// dependency, keeping `ami-tech` at the bottom of the crate graph).
fn ami_sim_rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> TechnologyNode {
        TechnologyNode::n90()
    }

    #[test]
    fn zero_sigma_reproduces_nominal() {
        let model = VariationModel::new(Voltage::ZERO);
        let mut rng = ami_sim_rng(1);
        let die = model.sample_die(&node(), 100e3, Temperature::ROOM, &mut rng);
        assert!((die.f_max.as_hertz() - node().f_max_nominal().as_hertz()).abs() < 1.0);
        let nominal = node().leakage_power(100e3, node().vdd_nominal(), Temperature::ROOM);
        assert!((die.leakage.as_watts() - nominal.as_watts()).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let model = VariationModel::typical_2003();
        let y1 = model.parametric_yield(
            &node(),
            100e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.0),
            Power::from_milliwatts(50.0),
            500,
            7,
        );
        let y2 = model.parametric_yield(
            &node(),
            100e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.0),
            Power::from_milliwatts(50.0),
            500,
            7,
        );
        assert_eq!(y1, y2);
    }

    #[test]
    fn slow_dies_leak_less_and_vice_versa() {
        // The defining anticorrelation: ΔVth > 0 → slower AND less leaky.
        let model = VariationModel::typical_2003();
        let mut rng = ami_sim_rng(11);
        let nominal_leak = node().leakage_power(100e3, node().vdd_nominal(), Temperature::ROOM);
        for _ in 0..200 {
            let die = model.sample_die(&node(), 100e3, Temperature::ROOM, &mut rng);
            if die.delta_vth.as_volts() > 0.0 {
                assert!(die.f_max <= node().f_max_nominal());
                assert!(die.leakage <= nominal_leak);
            } else {
                assert!(die.f_max >= node().f_max_nominal());
                assert!(die.leakage >= nominal_leak);
            }
        }
    }

    #[test]
    fn leakage_spread_is_long_tailed() {
        // ±3σ of 20 mV over a 95 mV swing: ~4.3x spread each way.
        let model = VariationModel::typical_2003();
        let mut rng = ami_sim_rng(3);
        let mut max_leak = 0.0f64;
        let mut min_leak = f64::INFINITY;
        for _ in 0..2000 {
            let die = model.sample_die(&node(), 100e3, Temperature::ROOM, &mut rng);
            max_leak = max_leak.max(die.leakage.as_watts());
            min_leak = min_leak.min(die.leakage.as_watts());
        }
        assert!(
            max_leak / min_leak > 10.0,
            "spread {:.1}x",
            max_leak / min_leak
        );
    }

    #[test]
    fn yield_falls_with_tighter_constraints() {
        let model = VariationModel::typical_2003();
        let loose = model.parametric_yield(
            &node(),
            100e3,
            Temperature::ROOM,
            Frequency::from_megahertz(900.0),
            Power::from_watts(1.0),
            1000,
            5,
        );
        let tight = model.parametric_yield(
            &node(),
            100e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.1),
            Power::from_milliwatts(2.0),
            1000,
            5,
        );
        assert!(loose > 0.9);
        assert!(tight < loose);
    }

    #[test]
    fn yield_many_matches_solo_calls_bit_for_bit() {
        // One shared die population must reproduce what N independent
        // same-seed populations did (the seed makes them identical).
        let model = VariationModel::typical_2003();
        let constraints = [
            (Frequency::from_megahertz(900.0), Power::from_watts(1.0)),
            (Frequency::from_gigahertz(1.0), Power::from_milliwatts(50.0)),
            (Frequency::from_gigahertz(1.1), Power::from_milliwatts(2.0)),
        ];
        let many =
            model.parametric_yield_many(&node(), 100e3, Temperature::ROOM, &constraints, 800, 7);
        for (i, &(f_min, leak_max)) in constraints.iter().enumerate() {
            let solo =
                model.parametric_yield(&node(), 100e3, Temperature::ROOM, f_min, leak_max, 800, 7);
            assert_eq!(many[i].to_bits(), solo.to_bits(), "constraint {i} diverged");
        }
    }

    #[test]
    fn yield_is_a_probability() {
        let model = VariationModel::typical_2003();
        let y = model.parametric_yield(
            &node(),
            100e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.05),
            Power::from_milliwatts(5.0),
            300,
            9,
        );
        assert!((0.0..=1.0).contains(&y));
    }
}
