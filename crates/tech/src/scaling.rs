//! Roadmap projection: carry one design across technology nodes.
//!
//! The keynote's scaling argument is that constant functionality gets
//! exponentially cheaper in energy — but only if leakage is contained.
//! [`Roadmap::project`] walks a fixed [`DesignPoint`] (gates, activity,
//! clock) across nodes and reports the dynamic/leakage split at each stop,
//! which experiment F2/A1 turns into the headline figure.

use crate::node::TechnologyNode;
use ami_units::{Area, Frequency, Power, Temperature};
use serde::{Deserialize, Serialize};

/// A fixed piece of functionality to be projected across nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Logic size in gate equivalents.
    pub gates: f64,
    /// Average switching activity (fraction of gates toggling per cycle).
    pub activity: f64,
    /// Required clock frequency.
    pub clock: Frequency,
    /// Operating temperature.
    pub temperature: Temperature,
}

impl DesignPoint {
    /// Creates a design point.
    ///
    /// # Panics
    ///
    /// Panics if `gates` is negative or `activity` lies outside `[0, 1]`.
    pub fn new(gates: f64, activity: f64, clock: Frequency, temperature: Temperature) -> Self {
        assert!(gates >= 0.0, "gate count must be non-negative");
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must lie in [0, 1]"
        );
        Self {
            gates,
            activity,
            clock,
            temperature,
        }
    }
}

/// One stop of a roadmap projection: the design evaluated on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingStep {
    /// Node name.
    pub node: String,
    /// Dynamic power at this node (nominal supply, required clock).
    pub dynamic: Power,
    /// Leakage power at this node.
    pub leakage: Power,
    /// Die area consumed by the logic.
    pub area: Area,
    /// Whether the node can reach the required clock at nominal supply.
    pub meets_clock: bool,
}

impl ScalingStep {
    /// Total power at this stop.
    pub fn total(&self) -> Power {
        self.dynamic + self.leakage
    }

    /// Leakage share of total power, in `[0, 1]` (zero if total is zero).
    pub fn leakage_fraction(&self) -> f64 {
        let total = self.total().as_watts();
        if total == 0.0 {
            0.0
        } else {
            self.leakage.as_watts() / total
        }
    }
}

/// An ordered sequence of technology nodes.
///
/// # Example
///
/// ```
/// use ami_tech::{DesignPoint, Roadmap};
/// use ami_units::{Frequency, Temperature};
///
/// let design = DesignPoint::new(200e3, 0.1, Frequency::from_megahertz(50.0), Temperature::ROOM);
/// let steps = Roadmap::full_2003().project(&design);
/// // Total power falls monotonically while leakage share rises.
/// assert!(steps.last().unwrap().total() < steps[0].total());
/// assert!(steps.last().unwrap().leakage_fraction() > steps[0].leakage_fraction());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roadmap {
    nodes: Vec<TechnologyNode>,
}

impl Roadmap {
    /// Builds a roadmap from an explicit node sequence.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<TechnologyNode>) -> Self {
        assert!(!nodes.is_empty(), "a roadmap needs at least one node");
        Self { nodes }
    }

    /// The five-node 2003 window: 250, 180, 130, 90, 65 nm.
    pub fn full_2003() -> Self {
        Self::new(vec![
            TechnologyNode::n250(),
            TechnologyNode::n180(),
            TechnologyNode::n130(),
            TechnologyNode::n90(),
            TechnologyNode::n65(),
        ])
    }

    /// The nodes in order.
    pub fn nodes(&self) -> &[TechnologyNode] {
        &self.nodes
    }

    /// Evaluates `design` on every node at nominal supply.
    pub fn project(&self, design: &DesignPoint) -> Vec<ScalingStep> {
        self.nodes
            .iter()
            .map(|node| {
                let vdd = node.vdd_nominal();
                ScalingStep {
                    node: node.name().to_owned(),
                    dynamic: node.dynamic_power(design.gates, design.activity, vdd, design.clock),
                    leakage: node.leakage_power(design.gates, vdd, design.temperature),
                    area: Area::from_square_millimeters(design.gates / node.gate_density_per_mm2()),
                    meets_clock: design.clock <= node.f_max_nominal(),
                }
            })
            .collect()
    }

    /// Evaluates `design` with each node's supply lowered as far as the
    /// required clock permits (perfect static DVS). Nodes that cannot reach
    /// the clock are evaluated at nominal supply with `meets_clock: false`.
    pub fn project_with_dvs(&self, design: &DesignPoint) -> Vec<ScalingStep> {
        self.nodes
            .iter()
            .map(|node| {
                let (vdd, meets) = match node.min_vdd_for(design.clock) {
                    Some(v) => (v, true),
                    None => (node.vdd_nominal(), false),
                };
                ScalingStep {
                    node: node.name().to_owned(),
                    dynamic: node.dynamic_power(design.gates, design.activity, vdd, design.clock),
                    leakage: node.leakage_power(design.gates, vdd, design.temperature),
                    area: Area::from_square_millimeters(design.gates / node.gate_density_per_mm2()),
                    meets_clock: meets,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeakageModel;

    fn reference_design() -> DesignPoint {
        DesignPoint::new(
            500e3,
            0.12,
            Frequency::from_megahertz(100.0),
            Temperature::ROOM,
        )
    }

    #[test]
    fn projection_covers_all_nodes() {
        let steps = Roadmap::full_2003().project(&reference_design());
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].node, "250nm");
        assert_eq!(steps[4].node, "65nm");
    }

    #[test]
    fn area_shrinks_across_nodes() {
        let steps = Roadmap::full_2003().project(&reference_design());
        for pair in steps.windows(2) {
            assert!(pair[1].area < pair[0].area);
        }
    }

    #[test]
    fn dynamic_power_shrinks_but_leakage_share_grows() {
        let steps = Roadmap::full_2003().project(&reference_design());
        for pair in steps.windows(2) {
            assert!(pair[1].dynamic < pair[0].dynamic);
            assert!(pair[1].leakage_fraction() >= pair[0].leakage_fraction());
        }
        // By 65 nm the leakage share is no longer negligible (> 1 %).
        assert!(steps[4].leakage_fraction() > 0.01);
    }

    #[test]
    fn dvs_projection_never_worse_than_nominal() {
        let roadmap = Roadmap::full_2003();
        let design = reference_design();
        let nominal = roadmap.project(&design);
        let dvs = roadmap.project_with_dvs(&design);
        for (n, d) in nominal.iter().zip(&dvs) {
            assert!(
                d.total() <= n.total() * 1.0000001,
                "DVS regressed on {}",
                n.node
            );
        }
    }

    #[test]
    fn leakage_ablation_changes_the_conclusion() {
        let design = reference_design();
        let with = Roadmap::full_2003().project(&design);
        let without = Roadmap::new(
            Roadmap::full_2003()
                .nodes()
                .iter()
                .cloned()
                .map(|n| n.with_leakage_model(LeakageModel::Off))
                .collect(),
        )
        .project(&design);
        // Without leakage, 65 nm looks strictly better than with it.
        assert!(without[4].total() < with[4].total());
        assert_eq!(without[4].leakage, Power::ZERO);
    }

    #[test]
    fn unreachable_clock_is_flagged() {
        let design = DesignPoint::new(1e5, 0.1, Frequency::from_gigahertz(3.0), Temperature::ROOM);
        let steps = Roadmap::full_2003().project(&design);
        assert!(steps.iter().all(|s| !s.meets_clock));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_roadmap_rejected() {
        let _ = Roadmap::new(Vec::new());
    }
}
