//! CMOS technology-node models for the Ambient Intelligence design space.
//!
//! The DATE 2003 keynote argues that all three ambient device classes —
//! µW autonomous, mW personal, W static — are "realized in Silicon IC
//! technologies", so every power number in the toolkit must be grounded in
//! a technology model. This crate provides:
//!
//! * [`TechnologyNode`] — circa-2003 process corners (250 nm … 65 nm) with
//!   supply, threshold, switched capacitance, leakage and density numbers;
//! * dynamic and subthreshold-leakage power models
//!   ([`TechnologyNode::dynamic_power`], [`TechnologyNode::leakage_power`]);
//! * voltage–frequency scaling via the alpha-power law
//!   ([`TechnologyNode::frequency_at`]), the physical basis for DVS;
//! * a scaling [`Roadmap`] to project one design across nodes; and
//! * the intrinsic computational efficiency bound ([`ice`]), the ceiling
//!   against which the ASIC/DSP/CPU flexibility gap is measured.
//!
//! # Example
//!
//! ```
//! use ami_tech::TechnologyNode;
//! use ami_units::Voltage;
//!
//! let n130 = TechnologyNode::n130();
//! // Halving Vdd quarters the dynamic energy per gate switch.
//! let e_full = n130.dynamic_energy_per_gate(n130.vdd_nominal());
//! let half = Voltage::new(n130.vdd_nominal().as_volts() / 2.0);
//! let e_half = n130.dynamic_energy_per_gate(half);
//! assert!((e_full.as_joules() / e_half.as_joules() - 4.0).abs() < 1e-9);
//! ```

pub mod gating;
pub mod ice;
pub mod node;
pub mod scaling;
pub mod variation;

pub use gating::PowerGate;
pub use ice::{intrinsic_efficiency, intrinsic_energy_per_op, GATE_SWITCHES_PER_OP};
pub use node::{LeakageModel, TechnologyNode};
pub use scaling::{DesignPoint, Roadmap, ScalingStep};
pub use variation::{DieSample, VariationModel};
