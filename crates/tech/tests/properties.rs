//! Property-based tests for the technology models.

use ami_tech::{DesignPoint, LeakageModel, Roadmap, TechnologyNode};
use ami_units::{Frequency, Temperature, Voltage};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechnologyNode> {
    prop_oneof![
        Just(TechnologyNode::n250()),
        Just(TechnologyNode::n180()),
        Just(TechnologyNode::n130()),
        Just(TechnologyNode::n90()),
        Just(TechnologyNode::n65()),
    ]
}

proptest! {
    /// Frequency is monotone non-decreasing in supply voltage.
    #[test]
    fn frequency_monotone_in_vdd(node in any_node(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let span = node.vdd_nominal().as_volts() - node.threshold().as_volts();
        let va = node.threshold().as_volts() + a * span;
        let vb = node.threshold().as_volts() + b * span;
        let fa = node.frequency_at(Voltage::new(va));
        let fb = node.frequency_at(Voltage::new(vb));
        if va <= vb {
            prop_assert!(fa <= fb);
        } else {
            prop_assert!(fb <= fa);
        }
    }

    /// min_vdd_for inverts frequency_at to within bisection tolerance.
    #[test]
    fn min_vdd_inverts_frequency(node in any_node(), frac in 0.01..1.0f64) {
        let target = Frequency::new(node.f_max_nominal().as_hertz() * frac);
        let vdd = node.min_vdd_for(target).expect("within range");
        let achieved = node.frequency_at(vdd);
        prop_assert!(achieved.as_hertz() >= target.as_hertz() * (1.0 - 1e-9));
        // And it is minimal: 1% less voltage misses the target.
        let lower = Voltage::new(
            node.threshold().as_volts()
                + (vdd.as_volts() - node.threshold().as_volts()) * 0.99,
        );
        prop_assert!(node.frequency_at(lower) <= achieved);
    }

    /// Dynamic power is linear in gates, activity and frequency.
    #[test]
    fn dynamic_power_linearity(
        node in any_node(),
        gates in 1e3..1e7f64,
        activity in 0.001..0.5f64,
        mhz in 1.0..300.0f64,
    ) {
        let f = Frequency::from_megahertz(mhz);
        let vdd = node.vdd_nominal();
        let p1 = node.dynamic_power(gates, activity, vdd, f);
        let p2 = node.dynamic_power(2.0 * gates, activity, vdd, f);
        let p3 = node.dynamic_power(gates, activity, vdd, Frequency::from_megahertz(2.0 * mhz));
        prop_assert!((p2.as_watts() / p1.as_watts() - 2.0).abs() < 1e-9);
        prop_assert!((p3.as_watts() / p1.as_watts() - 2.0).abs() < 1e-9);
    }

    /// Leakage grows with both supply and temperature.
    #[test]
    fn leakage_monotone(node in any_node(), dv in 0.0..0.3f64, dt in 0.0..60.0f64) {
        let base_v = Voltage::new(node.vdd_nominal().as_volts() - 0.3);
        let hi_v = Voltage::new(base_v.as_volts() + dv);
        let base_t = Temperature::from_kelvin(300.0);
        let hi_t = Temperature::from_kelvin(300.0 + dt);
        let i00 = node.leakage_current_per_gate(base_v, base_t);
        let i10 = node.leakage_current_per_gate(hi_v, base_t);
        let i01 = node.leakage_current_per_gate(base_v, hi_t);
        prop_assert!(i10 >= i00);
        prop_assert!(i01 >= i00);
    }

    /// The leakage-off ablation never exceeds the full model.
    #[test]
    fn ablation_bounds_full_model(node in any_node(), gates in 1.0..1e6f64) {
        let off = node.clone().with_leakage_model(LeakageModel::Off);
        let p_off = off.leakage_power(gates, off.vdd_nominal(), Temperature::ROOM);
        let p_on = node.leakage_power(gates, node.vdd_nominal(), Temperature::ROOM);
        prop_assert!(p_off <= p_on);
        prop_assert_eq!(p_off.as_watts(), 0.0);
    }

    /// Roadmap projection preserves step count and area monotonicity for
    /// any valid design point.
    #[test]
    fn projection_invariants(gates in 1e3..1e6f64, activity in 0.001..0.5f64, mhz in 1.0..100.0f64) {
        let design = DesignPoint::new(
            gates,
            activity,
            Frequency::from_megahertz(mhz),
            Temperature::ROOM,
        );
        let steps = Roadmap::full_2003().project(&design);
        prop_assert_eq!(steps.len(), 5);
        for pair in steps.windows(2) {
            prop_assert!(pair[1].area < pair[0].area);
            prop_assert!(pair[1].dynamic <= pair[0].dynamic);
        }
        for step in &steps {
            prop_assert!((0.0..=1.0).contains(&step.leakage_fraction()));
        }
    }

    /// DVS projection never exceeds nominal projection in total power.
    #[test]
    fn dvs_projection_bounded(gates in 1e3..1e6f64, mhz in 1.0..200.0f64) {
        let design = DesignPoint::new(
            gates,
            0.1,
            Frequency::from_megahertz(mhz),
            Temperature::ROOM,
        );
        let roadmap = Roadmap::full_2003();
        let nominal = roadmap.project(&design);
        let dvs = roadmap.project_with_dvs(&design);
        for (n, d) in nominal.iter().zip(&dvs) {
            prop_assert!(d.total().as_watts() <= n.total().as_watts() * (1.0 + 1e-9));
        }
    }
}
