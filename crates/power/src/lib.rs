//! The power–information graph: the keynote's central analytical device.
//!
//! Aarts & Roovers locate every ambient-intelligence technology on a plane
//! whose x-axis is the information rate a device handles and whose y-axis
//! is the power it burns doing so. Three observations structure the plane:
//!
//! 1. devices cluster into **three power classes** ([`PowerClass`]) —
//!    autonomous µW-nodes, personal mW-nodes and static W-nodes;
//! 2. at equal information rate, devices differ by orders of magnitude in
//!    **efficiency** (bits per joule) depending on how much of their work
//!    is communication, computation or interface ([`DeviceKind`]);
//! 3. a **Pareto frontier** ([`pareto_frontier`]) of best-efficiency
//!    devices bounds what silicon can do at each rate.
//!
//! # Example
//!
//! ```
//! use ami_power::{DeviceKind, DevicePoint, PowerClass, PowerInfoGraph};
//! use ami_units::{DataRate, Power};
//!
//! let mut graph = PowerInfoGraph::new();
//! graph.add(DevicePoint::new(
//!     "sensor node",
//!     DataRate::from_bits_per_second(200.0),
//!     Power::from_microwatts(80.0),
//!     DeviceKind::Communication,
//! ));
//! let pt = &graph.points()[0];
//! assert_eq!(pt.class(), PowerClass::MicroWatt);
//! ```

pub mod class;
pub mod graph;
pub mod pareto;
pub mod portfolio;
pub mod scatter;

pub use class::PowerClass;
pub use graph::{DeviceKind, DevicePoint, PowerInfoGraph};
pub use pareto::pareto_frontier;
pub use portfolio::portfolio_2003;
pub use scatter::scatter_plot;
