//! The circa-2003 device portfolio that populates figure F1.
//!
//! Rates and powers are representative public numbers for each product
//! category in 2003; they are the data behind the keynote-style
//! power–information scatter. Sources: product datasheets and survey
//! papers of the era (see EXPERIMENTS.md).

use crate::graph::{DeviceKind, DevicePoint, PowerInfoGraph};
use ami_units::{DataRate, Power};

/// Builds the 2003 reference portfolio.
///
/// # Example
///
/// ```
/// use ami_power::{portfolio_2003, PowerClass};
///
/// let graph = portfolio_2003();
/// // All three keynote classes are populated.
/// for class in PowerClass::all() {
///     assert!(!graph.in_class(class).is_empty());
/// }
/// ```
pub fn portfolio_2003() -> PowerInfoGraph {
    let kbps = DataRate::from_kilobits_per_second;
    let mbps = DataRate::from_megabits_per_second;
    let uw = Power::from_microwatts;
    let mw = Power::from_milliwatts;
    let w = Power::from_watts;

    [
        // --- autonomous (µW) class ---
        DevicePoint::new(
            "RFID tag",
            DataRate::from_bits_per_second(500.0),
            uw(10.0),
            DeviceKind::Communication,
        ),
        DevicePoint::new(
            "wireless sensor node",
            DataRate::from_bits_per_second(200.0),
            uw(100.0),
            DeviceKind::Communication,
        ),
        DevicePoint::new(
            "quartz watch",
            DataRate::from_bits_per_second(10.0),
            uw(1.0),
            DeviceKind::Computation,
        ),
        // --- personal (mW) class ---
        DevicePoint::new("hearing aid", kbps(16.0), mw(1.0), DeviceKind::Computation),
        DevicePoint::new(
            "pacemaker",
            DataRate::from_bits_per_second(100.0),
            uw(30.0),
            DeviceKind::Computation,
        ),
        DevicePoint::new(
            "DAB receiver",
            kbps(192.0),
            mw(150.0),
            DeviceKind::Computation,
        ),
        DevicePoint::new(
            "GSM phone (talk)",
            kbps(13.0),
            mw(400.0),
            DeviceKind::Communication,
        ),
        DevicePoint::new("PDA", mbps(1.0), mw(800.0), DeviceKind::Interface),
        DevicePoint::new("MP3 player", kbps(128.0), mw(60.0), DeviceKind::Computation),
        // --- static (W) class ---
        DevicePoint::new(
            "WLAN access point",
            mbps(11.0),
            w(4.0),
            DeviceKind::Communication,
        ),
        DevicePoint::new("set-top box", mbps(8.0), w(15.0), DeviceKind::Computation),
        DevicePoint::new("DVD player", mbps(10.0), w(12.0), DeviceKind::Computation),
        DevicePoint::new("TV display", mbps(150.0), w(90.0), DeviceKind::Interface),
        DevicePoint::new("desktop PC", mbps(100.0), w(80.0), DeviceKind::Computation),
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::PowerClass;

    #[test]
    fn portfolio_spans_all_classes() {
        let g = portfolio_2003();
        assert!(g.len() >= 12);
        for class in PowerClass::all() {
            assert!(
                g.in_class(class).len() >= 3,
                "class {class} under-populated"
            );
        }
    }

    #[test]
    fn classes_are_decades_apart_in_median_power() {
        let g = portfolio_2003();
        let median_power = |class: PowerClass| {
            let mut v: Vec<f64> = g
                .in_class(class)
                .iter()
                .map(|p| p.power().as_watts())
                .collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let micro = median_power(PowerClass::MicroWatt);
        let milli = median_power(PowerClass::MilliWatt);
        let watt = median_power(PowerClass::Watt);
        assert!(
            milli / micro > 100.0,
            "µW and mW classes must be decades apart"
        );
        assert!(
            watt / milli > 10.0,
            "mW and W classes must be decades apart"
        );
    }

    #[test]
    fn communication_pays_more_per_bit_at_matched_rates() {
        // Observation (2) of the keynote, at matched information rates:
        // moving a bit through the air costs more than processing it.
        let g = portfolio_2003();
        let jpb = |name: &str| {
            let p = g
                .points()
                .iter()
                .find(|p| p.name() == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            1.0 / p.bits_per_joule()
        };
        // ~13-16 kbit/s: GSM talk vs hearing-aid DSP.
        assert!(jpb("GSM phone (talk)") > 10.0 * jpb("hearing aid"));
        // ~10 Mbit/s: WLAN AP radio vs DVD decode... the AP still pays more
        // per bit than the set-top box *computes* for.
        assert!(jpb("wireless sensor node") > jpb("pacemaker"));
    }

    #[test]
    fn frontier_is_nonempty_and_valid() {
        let g = portfolio_2003();
        let f = g.frontier();
        assert!(!f.is_empty());
        assert!(f.iter().all(|&i| i < g.len()));
    }
}
