//! ASCII log–log scatter rendering of the power–information graph —
//! the closest a terminal gets to the keynote's figure 1.

use crate::class::PowerClass;
use crate::graph::PowerInfoGraph;

/// Renders the graph as a log–log ASCII scatter: x = information rate,
/// y = power (decades). Frontier devices print as `*`, others as `o`;
/// the class-boundary rows (1 mW, 1 W) are ruled.
///
/// # Example
///
/// ```
/// use ami_power::{portfolio_2003, scatter_plot};
///
/// let art = scatter_plot(&portfolio_2003(), 60, 20);
/// assert!(art.contains('*'));
/// assert!(art.contains("1 mW"));
/// ```
///
/// # Panics
///
/// Panics if the graph is empty or the canvas is smaller than 10×5.
pub fn scatter_plot(graph: &PowerInfoGraph, width: usize, height: usize) -> String {
    assert!(!graph.is_empty(), "cannot plot an empty graph");
    assert!(width >= 10 && height >= 5, "canvas too small");

    let xs: Vec<f64> = graph
        .points()
        .iter()
        .map(|p| p.info_rate().as_bits_per_second().log10())
        .collect();
    let ys: Vec<f64> = graph
        .points()
        .iter()
        .map(|p| p.power().as_watts().log10())
        .collect();
    let (x_min, x_max) = bounds(&xs);
    let (y_min, y_max) = bounds(&ys);
    let frontier = graph.frontier();

    let mut canvas = vec![vec![' '; width]; height];
    // Class boundary rows at 1 mW (−3) and 1 W (0).
    let row_of = |y: f64| -> Option<usize> {
        if y < y_min || y > y_max {
            return None;
        }
        let frac = (y - y_min) / (y_max - y_min);
        Some(height - 1 - (frac * (height - 1) as f64).round() as usize)
    };
    for boundary in [-3.0, 0.0] {
        if let Some(row) = row_of(boundary) {
            for cell in &mut canvas[row] {
                *cell = '-';
            }
        }
    }
    for (idx, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
        let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
        let row = row_of(y).expect("point within bounds");
        canvas[row][col] = if frontier.contains(&idx) { '*' } else { 'o' };
    }

    let mut out = String::new();
    out.push_str(&format!(
        "power (log W) {:.0}..{:.0}  vs  info rate (log bit/s) {:.0}..{:.0}\n",
        y_max, y_min, x_min, x_max
    ));
    for (row_idx, row) in canvas.iter().enumerate() {
        let label = if Some(row_idx) == row_of(0.0) {
            "1 W  "
        } else if Some(row_idx) == row_of(-3.0) {
            "1 mW "
        } else {
            "     "
        };
        out.push_str(label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("     +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("      low information rate  ->  high   (* = frontier, o = device)\n");
    let _ = PowerClass::all(); // classes documented by the ruled rows
    out
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-9 {
        (min - 1.0, max + 1.0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DeviceKind, DevicePoint};
    use crate::portfolio::portfolio_2003;
    use ami_units::{DataRate, Power};

    #[test]
    fn plot_contains_all_marker_kinds() {
        let art = scatter_plot(&portfolio_2003(), 64, 24);
        assert!(art.contains('*'), "frontier markers expected");
        assert!(art.contains('o'), "dominated devices expected");
        assert!(art.contains("1 mW") && art.contains("1 W"));
    }

    #[test]
    fn plot_dimensions() {
        let art = scatter_plot(&portfolio_2003(), 40, 12);
        // header + 12 rows + axis + caption.
        assert_eq!(art.lines().count(), 15);
        for line in art.lines().skip(1).take(12) {
            assert_eq!(line.chars().count(), 40 + 6);
        }
    }

    #[test]
    fn single_point_plots_without_panic() {
        let graph: PowerInfoGraph = [DevicePoint::new(
            "lonely",
            DataRate::from_bits_per_second(100.0),
            Power::from_milliwatts(5.0),
            DeviceKind::Computation,
        )]
        .into_iter()
        .collect();
        let art = scatter_plot(&graph, 20, 8);
        assert!(art.contains('*'));
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_rejected() {
        let _ = scatter_plot(&PowerInfoGraph::new(), 40, 10);
    }
}
