//! Pareto-frontier extraction for (maximize x, minimize y) point sets.

/// Returns the indices of the Pareto-optimal points of `points`, where a
/// point dominates another if it has `x >= other.x` and `y <= other.y`
/// with at least one strict. Indices are returned in ascending-`x` order.
///
/// # Example
///
/// ```
/// use ami_power::pareto_frontier;
///
/// // (rate, power): the 2nd point is dominated by the 3rd.
/// let pts = [(1.0, 1.0), (2.0, 5.0), (2.0, 2.0), (4.0, 4.0)];
/// let frontier = pareto_frontier(&pts, |p| *p);
/// assert_eq!(frontier, vec![0, 2, 3]);
/// ```
pub fn pareto_frontier<T>(points: &[T], xy: impl Fn(&T) -> (f64, f64)) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by x ascending, then y DEscending, so that the reverse walk
    // below visits equal-x points cheapest-first and keeps only that one.
    order.sort_by(|&a, &b| {
        let (xa, ya) = xy(&points[a]);
        let (xb, yb) = xy(&points[b]);
        xa.total_cmp(&xb).then(yb.total_cmp(&ya))
    });
    // Walk from the largest x down: a point is on the frontier iff its y is
    // strictly below every y seen so far (all of which have x >= its x).
    let mut frontier = Vec::new();
    let mut best_y = f64::INFINITY;
    for &idx in order.iter().rev() {
        let (_, y) = xy(&points[idx]);
        if y < best_y {
            frontier.push(idx);
            best_y = y;
        }
    }
    frontier.reverse();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_frontier() {
        assert_eq!(pareto_frontier(&[(3.0, 4.0)], |p| *p), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = [(1.0, 10.0), (2.0, 5.0), (1.5, 20.0)];
        // (1.5, 20) dominated by (2, 5); (1, 10) dominated by (2, 5).
        assert_eq!(pareto_frontier(&pts, |p| *p), vec![1]);
    }

    #[test]
    fn frontier_is_monotone() {
        let pts = [(1.0, 1.0), (2.0, 2.0), (3.0, 1.5), (4.0, 8.0), (5.0, 3.0)];
        let f = pareto_frontier(&pts, |p| *p);
        assert_eq!(f, vec![0, 2, 4]);
        // Along the frontier x and y both ascend.
        for pair in f.windows(2) {
            assert!(pts[pair[0]].0 < pts[pair[1]].0);
            assert!(pts[pair[0]].1 < pts[pair[1]].1);
        }
    }

    #[test]
    fn duplicate_x_keeps_cheapest() {
        let pts = [(2.0, 5.0), (2.0, 2.0)];
        assert_eq!(pareto_frontier(&pts, |p| *p), vec![1]);
    }

    #[test]
    fn empty_input_empty_output() {
        let pts: [(f64, f64); 0] = [];
        assert!(pareto_frontier(&pts, |p| *p).is_empty());
    }
}
