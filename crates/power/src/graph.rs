//! Device points and the graph container.

use crate::class::PowerClass;
use crate::pareto::pareto_frontier;
use ami_units::{DataRate, Power};
use serde::{Deserialize, Serialize};

/// What a device mostly spends its power on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Signal processing and computation.
    Computation,
    /// Wireless (or wired) communication.
    Communication,
    /// Human interface: display, audio, sensing.
    Interface,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceKind::Computation => "computation",
            DeviceKind::Communication => "communication",
            DeviceKind::Interface => "interface",
        })
    }
}

/// One device located on the power–information plane.
///
/// # Example
///
/// ```
/// use ami_power::{DeviceKind, DevicePoint};
/// use ami_units::{DataRate, Power};
///
/// let pda = DevicePoint::new(
///     "PDA",
///     DataRate::from_megabits_per_second(1.0),
///     Power::from_milliwatts(800.0),
///     DeviceKind::Computation,
/// );
/// assert!(pda.bits_per_joule() > 1e6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePoint {
    name: String,
    info_rate: DataRate,
    power: Power,
    kind: DeviceKind,
}

impl DevicePoint {
    /// Creates a device point.
    ///
    /// # Panics
    ///
    /// Panics if `info_rate` or `power` is not strictly positive.
    pub fn new(
        name: impl Into<String>,
        info_rate: DataRate,
        power: Power,
        kind: DeviceKind,
    ) -> Self {
        assert!(
            info_rate.as_bits_per_second() > 0.0,
            "information rate must be positive"
        );
        assert!(power > Power::ZERO, "power must be positive");
        Self {
            name: name.into(),
            info_rate,
            power,
            kind,
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Information rate handled (x-axis).
    pub fn info_rate(&self) -> DataRate {
        self.info_rate
    }

    /// Average power burnt (y-axis).
    pub fn power(&self) -> Power {
        self.power
    }

    /// What the power mostly goes into.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The keynote class of this device.
    pub fn class(&self) -> PowerClass {
        PowerClass::of(self.power)
    }

    /// Information efficiency: bits handled per joule burnt.
    pub fn bits_per_joule(&self) -> f64 {
        self.info_rate.as_bits_per_second() / self.power.as_watts()
    }
}

/// The power–information graph: a set of device points with class and
/// frontier analyses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerInfoGraph {
    points: Vec<DevicePoint>,
}

impl PowerInfoGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device point.
    pub fn add(&mut self, point: DevicePoint) {
        self.points.push(point);
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[DevicePoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points belonging to `class`.
    pub fn in_class(&self, class: PowerClass) -> Vec<&DevicePoint> {
        self.points.iter().filter(|p| p.class() == class).collect()
    }

    /// Indices of the efficiency frontier: devices not dominated in
    /// (higher rate, lower power).
    pub fn frontier(&self) -> Vec<usize> {
        pareto_frontier(&self.points, |p| {
            (p.info_rate().as_bits_per_second(), p.power().as_watts())
        })
    }

    /// The most efficient device (bits per joule), if any.
    pub fn most_efficient(&self) -> Option<&DevicePoint> {
        self.points
            .iter()
            .max_by(|a, b| a.bits_per_joule().total_cmp(&b.bits_per_joule()))
    }

    /// Renders the graph as aligned text rows sorted by information rate:
    /// name, rate, power, bits/J, kind, class, frontier marker.
    pub fn table(&self) -> String {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            self.points[a]
                .info_rate()
                .total_cmp(&self.points[b].info_rate())
        });
        let frontier = self.frontier();
        let width = self
            .points
            .iter()
            .map(|p| p.name().len())
            .max()
            .unwrap_or(4)
            .max(6);
        let mut out = format!(
            "{:width$}  {:>12}  {:>10}  {:>10}  {:<13}  {:<8}  frontier\n",
            "device", "info rate", "power", "bit/J", "kind", "class"
        );
        for idx in order {
            let p = &self.points[idx];
            out.push_str(&format!(
                "{:width$}  {:>12}  {:>10}  {:>10.3e}  {:<13}  {:<8}  {}\n",
                p.name(),
                p.info_rate().to_string(),
                p.power().to_string(),
                p.bits_per_joule(),
                p.kind().to_string(),
                p.class().to_string(),
                if frontier.contains(&idx) { "*" } else { "" },
            ));
        }
        out
    }
}

impl FromIterator<DevicePoint> for PowerInfoGraph {
    fn from_iter<I: IntoIterator<Item = DevicePoint>>(iter: I) -> Self {
        Self {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<DevicePoint> for PowerInfoGraph {
    fn extend<I: IntoIterator<Item = DevicePoint>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, bps: f64, watts: f64) -> DevicePoint {
        DevicePoint::new(
            name,
            DataRate::from_bits_per_second(bps),
            Power::from_watts(watts),
            DeviceKind::Computation,
        )
    }

    #[test]
    fn class_partition_covers_all_points() {
        let graph: PowerInfoGraph = [
            point("a", 100.0, 50e-6),
            point("b", 1e6, 0.1),
            point("c", 1e7, 5.0),
        ]
        .into_iter()
        .collect();
        let total: usize = PowerClass::all()
            .iter()
            .map(|&c| graph.in_class(c).len())
            .sum();
        assert_eq!(total, graph.len());
        assert_eq!(graph.in_class(PowerClass::MicroWatt).len(), 1);
    }

    #[test]
    fn frontier_rejects_dominated_devices() {
        let graph: PowerInfoGraph = [
            point("good", 1e6, 0.01),
            point("bad", 1e5, 0.5), // slower AND hungrier
            point("fast", 1e8, 1.0),
        ]
        .into_iter()
        .collect();
        let f = graph.frontier();
        assert!(f.contains(&0) && f.contains(&2) && !f.contains(&1));
    }

    #[test]
    fn most_efficient_is_max_bits_per_joule() {
        let graph: PowerInfoGraph = [point("x", 1e6, 1.0), point("y", 1e6, 0.1)]
            .into_iter()
            .collect();
        assert_eq!(graph.most_efficient().unwrap().name(), "y");
    }

    #[test]
    fn table_renders_all_devices() {
        let graph: PowerInfoGraph = [point("alpha", 100.0, 1e-5), point("beta", 1e6, 0.1)]
            .into_iter()
            .collect();
        let t = graph.table();
        assert!(t.contains("alpha") && t.contains("beta"));
        assert!(t.contains("µW-node") && t.contains("mW-node"));
        assert!(t.contains('*'));
    }

    #[test]
    fn empty_graph_behaviour() {
        let g = PowerInfoGraph::new();
        assert!(g.is_empty());
        assert!(g.most_efficient().is_none());
        assert!(g.frontier().is_empty());
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_point_rejected() {
        let _ = DevicePoint::new(
            "bad",
            DataRate::from_bits_per_second(1.0),
            Power::ZERO,
            DeviceKind::Interface,
        );
    }
}
