//! The three-device taxonomy of the keynote.

use ami_units::Power;
use serde::{Deserialize, Serialize};

/// The keynote's three power classes of ambient devices.
///
/// Band boundaries (average power):
///
/// * [`PowerClass::MicroWatt`] — below 1 mW: autonomous nodes living on
///   scavenged energy;
/// * [`PowerClass::MilliWatt`] — 1 mW to 1 W: personal, battery-powered
///   devices;
/// * [`PowerClass::Watt`] — 1 W and above: static, mains-powered
///   equipment limited by thermal budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PowerClass {
    /// Autonomous node (µW): energy scavenging, perpetual operation.
    MicroWatt,
    /// Personal node (mW): battery, days-to-weeks lifetime.
    MilliWatt,
    /// Static node (W): mains, thermally limited.
    Watt,
}

impl PowerClass {
    /// Classifies an average power into its band.
    pub fn of(average: Power) -> Self {
        if average < Power::from_milliwatts(1.0) {
            PowerClass::MicroWatt
        } else if average < Power::from_watts(1.0) {
            PowerClass::MilliWatt
        } else {
            PowerClass::Watt
        }
    }

    /// Upper power bound of this band (`None` for the open-ended W class).
    pub fn upper_bound(self) -> Option<Power> {
        match self {
            PowerClass::MicroWatt => Some(Power::from_milliwatts(1.0)),
            PowerClass::MilliWatt => Some(Power::from_watts(1.0)),
            PowerClass::Watt => None,
        }
    }

    /// The energy source the keynote associates with this class.
    pub fn energy_source(self) -> &'static str {
        match self {
            PowerClass::MicroWatt => "energy scavenging (light, vibration, heat)",
            PowerClass::MilliWatt => "battery",
            PowerClass::Watt => "mains",
        }
    }

    /// The keynote's name for devices of this class.
    pub fn device_name(self) -> &'static str {
        match self {
            PowerClass::MicroWatt => "autonomous node",
            PowerClass::MilliWatt => "personal node",
            PowerClass::Watt => "static node",
        }
    }

    /// All classes, lowest power first.
    pub fn all() -> [PowerClass; 3] {
        [
            PowerClass::MicroWatt,
            PowerClass::MilliWatt,
            PowerClass::Watt,
        ]
    }
}

impl std::fmt::Display for PowerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PowerClass::MicroWatt => "\u{00b5}W-node",
            PowerClass::MilliWatt => "mW-node",
            PowerClass::Watt => "W-node",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(
            PowerClass::of(Power::from_microwatts(50.0)),
            PowerClass::MicroWatt
        );
        assert_eq!(
            PowerClass::of(Power::from_microwatts(999.0)),
            PowerClass::MicroWatt
        );
        assert_eq!(
            PowerClass::of(Power::from_milliwatts(1.0)),
            PowerClass::MilliWatt
        );
        assert_eq!(
            PowerClass::of(Power::from_milliwatts(999.0)),
            PowerClass::MilliWatt
        );
        assert_eq!(PowerClass::of(Power::from_watts(1.0)), PowerClass::Watt);
        assert_eq!(PowerClass::of(Power::from_watts(200.0)), PowerClass::Watt);
    }

    #[test]
    fn ordering_matches_power() {
        assert!(PowerClass::MicroWatt < PowerClass::MilliWatt);
        assert!(PowerClass::MilliWatt < PowerClass::Watt);
    }

    #[test]
    fn metadata_is_complete() {
        for class in PowerClass::all() {
            assert!(!class.energy_source().is_empty());
            assert!(!class.device_name().is_empty());
            assert!(!class.to_string().is_empty());
        }
        assert!(PowerClass::Watt.upper_bound().is_none());
        assert_eq!(
            PowerClass::MicroWatt.upper_bound().unwrap(),
            Power::from_milliwatts(1.0)
        );
    }
}
