//! Property-based tests for the power–information graph analyses.

use ami_power::{pareto_frontier, DeviceKind, DevicePoint, PowerClass, PowerInfoGraph};
use ami_units::{DataRate, Power};
use proptest::prelude::*;

fn any_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((1.0..1e9f64, 1e-6..100.0f64), 0..60)
}

proptest! {
    /// Frontier correctness: no frontier point is dominated, every
    /// non-frontier point is dominated by some frontier point.
    #[test]
    fn frontier_is_exactly_the_nondominated_set(pts in any_points()) {
        let frontier = pareto_frontier(&pts, |p| *p);
        let dominates = |a: (f64, f64), b: (f64, f64)| {
            a.0 >= b.0 && a.1 <= b.1 && (a.0 > b.0 || a.1 < b.1)
        };
        for (idx, &p) in pts.iter().enumerate() {
            let dominated = pts.iter().enumerate().any(|(j, &q)| j != idx && dominates(q, p));
            prop_assert_eq!(
                frontier.contains(&idx),
                !dominated,
                "point {} misclassified",
                idx
            );
        }
    }

    /// Frontier is monotone: x and y both strictly ascend along it.
    #[test]
    fn frontier_monotone(pts in any_points()) {
        let frontier = pareto_frontier(&pts, |p| *p);
        for pair in frontier.windows(2) {
            prop_assert!(pts[pair[0]].0 < pts[pair[1]].0);
            prop_assert!(pts[pair[0]].1 < pts[pair[1]].1);
        }
    }

    /// Classification boundaries partition the power axis.
    #[test]
    fn classes_partition(watts in 1e-9..1e4f64) {
        let class = PowerClass::of(Power::from_watts(watts));
        let expected = if watts < 1e-3 {
            PowerClass::MicroWatt
        } else if watts < 1.0 {
            PowerClass::MilliWatt
        } else {
            PowerClass::Watt
        };
        prop_assert_eq!(class, expected);
    }

    /// in_class over all classes is a partition of the graph.
    #[test]
    fn in_class_partitions_graph(specs in prop::collection::vec((1.0..1e9f64, 1e-7..100.0f64), 1..40)) {
        let graph: PowerInfoGraph = specs
            .iter()
            .enumerate()
            .map(|(idx, &(rate, power))| {
                DevicePoint::new(
                    format!("d{idx}"),
                    DataRate::from_bits_per_second(rate),
                    Power::from_watts(power),
                    DeviceKind::Computation,
                )
            })
            .collect();
        let total: usize = PowerClass::all().iter().map(|&c| graph.in_class(c).len()).sum();
        prop_assert_eq!(total, graph.len());
        // The most efficient device has the max bits/J by definition.
        let best = graph.most_efficient().unwrap().bits_per_joule();
        for p in graph.points() {
            prop_assert!(p.bits_per_joule() <= best * (1.0 + 1e-12));
        }
    }

    /// The rendered table contains every device name exactly once.
    #[test]
    fn table_lists_everything(n in 1usize..20) {
        let graph: PowerInfoGraph = (0..n)
            .map(|idx| {
                DevicePoint::new(
                    format!("device-{idx:02}"),
                    DataRate::from_bits_per_second(10.0 * (idx + 1) as f64),
                    Power::from_milliwatts((idx + 1) as f64),
                    DeviceKind::Interface,
                )
            })
            .collect();
        let table = graph.table();
        for idx in 0..n {
            prop_assert_eq!(table.matches(&format!("device-{idx:02}")).count(), 1);
        }
    }
}
