//! The service smoke test CI runs: three requests over the real
//! socket protocol, two of them identical — assert exactly one compile
//! for the duplicated spec and byte-equal manifests.

use ami_scenario::json::{parse, JsonValue};
use ami_svc::proto::{read_frame, write_frame};
use ami_svc::server::Server;
use ami_svc::Service;
use std::net::TcpStream;
use std::sync::Arc;

const GRID_SPEC: &str = r#"{
    "name": "smoke-grid",
    "rounds": 20,
    "topology": {"kind": "grid", "side": 4, "spacing_m": 30.0},
    "workload": {"kind": "gathering", "strategy": "minimum_energy"}
}"#;

const LOSSY_SPEC: &str = r#"{
    "name": "smoke-lossy",
    "rounds": 20,
    "topology": {"kind": "grid", "side": 4, "spacing_m": 30.0},
    "workload": {"kind": "lossy", "ber": 0.001, "arq_attempts": 4}
}"#;

fn roundtrip(conn: &mut TcpStream, request: &str) -> JsonValue {
    write_frame(conn, request.as_bytes()).unwrap();
    let reply = read_frame(conn).unwrap().expect("server replied");
    parse(std::str::from_utf8(&reply).unwrap()).unwrap()
}

#[test]
fn three_requests_two_identical_compile_once() {
    let service = Arc::new(Service::new(8));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.serve());
    let mut conn = TcpStream::connect(addr).unwrap();

    let first = roundtrip(
        &mut conn,
        &format!(r#"{{"id": "q1", "threads": 1, "scenario": {GRID_SPEC}}}"#),
    );
    let second = roundtrip(
        &mut conn,
        &format!(r#"{{"id": "q2", "threads": 2, "scenario": {GRID_SPEC}}}"#),
    );
    let third = roundtrip(
        &mut conn,
        &format!(r#"{{"id": "q3", "threads": 1, "scenario": {LOSSY_SPEC}}}"#),
    );

    // The duplicate hit the cache; the distinct spec did not.
    assert_eq!(first.get("cache_hit"), Some(&JsonValue::Bool(false)));
    assert_eq!(second.get("cache_hit"), Some(&JsonValue::Bool(true)));
    assert_eq!(third.get("cache_hit"), Some(&JsonValue::Bool(false)));

    // Exactly one compile per distinct scenario — two total, one for
    // the duplicated spec.
    let stats = service.cache_stats();
    assert_eq!(stats.compiles, 2, "identical specs compile once: {stats:?}");
    assert_eq!(stats.hits, 1);

    // Manifest equality for the identical pair (even at different
    // thread counts), inequality for the distinct one.
    let manifest = doc_manifest;
    assert_eq!(manifest(&first), manifest(&second));
    assert_ne!(manifest(&first), manifest(&third));

    // Hashes agree with the equality pattern.
    let hash = |doc: &JsonValue| {
        doc.get("scenario_hash")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_owned()
    };
    assert_eq!(hash(&first), hash(&second));
    assert_ne!(hash(&first), hash(&third));
}

/// Renders the embedded manifest back to a comparable string (the
/// parsed object preserves member order, so equal JSON in means equal
/// string out).
fn doc_manifest(doc: &JsonValue) -> String {
    fn render(value: &JsonValue, out: &mut String) {
        match value {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&format!("{n:?}")),
            JsonValue::String(s) => out.push_str(&format!("{s:?}")),
            JsonValue::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (k, (name, member)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{name:?}:"));
                    render(member, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    render(
        doc.get("manifest").expect("response carries a manifest"),
        &mut out,
    );
    out
}

#[test]
fn batch_frame_answers_in_order_with_shared_manifests() {
    let service = Arc::new(Service::new(8));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.serve());
    let mut conn = TcpStream::connect(addr).unwrap();

    let batch = format!(
        r#"[{{"id": "b1", "threads": 1, "scenario": {GRID_SPEC}}},
            {{"id": "b2", "threads": 1, "scenario": {LOSSY_SPEC}}},
            {{"id": "b3", "threads": 1, "scenario": {GRID_SPEC}}}]"#
    );
    let reply = roundtrip(&mut conn, &batch);
    let JsonValue::Array(items) = &reply else {
        panic!("batch reply must be an array, got {reply:?}");
    };
    assert_eq!(items.len(), 3);
    let id = |k: usize| items[k].get("id").and_then(|v| v.as_str()).unwrap();
    assert_eq!((id(0), id(1), id(2)), ("b1", "b2", "b3"));
    // The duplicate rode the leader's execution.
    assert_eq!(items[2].get("cache_hit"), Some(&JsonValue::Bool(true)));
    assert_eq!(doc_manifest(&items[0]), doc_manifest(&items[2]));
    assert_eq!(service.cache_stats().compiles, 2);
}

#[test]
fn malformed_frames_get_an_error_and_keep_the_connection() {
    let service = Arc::new(Service::new(4));
    let server = Server::bind("127.0.0.1:0", service).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.serve());
    let mut conn = TcpStream::connect(addr).unwrap();

    let reply = roundtrip(&mut conn, "{not json");
    assert!(reply.get("error").is_some());

    let reply = roundtrip(
        &mut conn,
        &format!(r#"{{"id": "ok-after-error", "threads": 1, "scenario": {GRID_SPEC}}}"#),
    );
    assert!(reply.get("scenario_hash").is_some(), "connection survived");
}
