//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is a big-endian `u32` byte length followed by that
//! many bytes of UTF-8 JSON. A request frame is either one request
//! object or an array of them (a batch); the response frame mirrors the
//! shape. A request object is strict — unknown members are rejected:
//!
//! ```json
//! {"id": "r1", "threads": 4, "scenario": { ...ScenarioSpec... }}
//! ```
//!
//! A success response carries the deterministic manifest plus serving
//! metrics; a failure response carries `id` (when one was parsed) and
//! `error`:
//!
//! ```json
//! {"id": "r1", "scenario_hash": "…", "cache_hit": false,
//!  "compile_micros": 1234, "queue_depth": 1, "manifest": { … }}
//! ```
//!
//! # Example
//!
//! ```
//! use ami_svc::proto::{read_frame, write_frame};
//! use std::io::Cursor;
//!
//! let mut wire = Vec::new();
//! write_frame(&mut wire, br#"{"id":"r1"}"#).unwrap();
//! let mut reader = Cursor::new(wire);
//! let frame = read_frame(&mut reader).unwrap().unwrap();
//! assert_eq!(frame, br#"{"id":"r1"}"#);
//! assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
//! ```

use crate::{RunRequest, RunResponse};
use ami_scenario::json::{parse, JsonValue};
use ami_scenario::{ScenarioError, ScenarioSpec};
use ami_sim::obs::to_json;
use std::io::{self, Read, Write};

/// Largest accepted frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean end-of-stream
/// (EOF exactly at a frame boundary).
///
/// # Errors
///
/// Propagates I/O errors; rejects frames over [`MAX_FRAME`] with
/// [`io::ErrorKind::InvalidData`], and EOF mid-frame with
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        let n = reader.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside a frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A decoded request frame: the requests and whether the frame was an
/// array (batches answer with an array).
#[derive(Debug, Clone)]
pub struct RequestFrame {
    /// The decoded requests, in wire order.
    pub requests: Vec<RunRequest>,
    /// True when the frame was a JSON array.
    pub batch: bool,
}

/// Decodes a request frame (one object or an array of them).
///
/// # Errors
///
/// [`ScenarioError`] when the payload is not valid JSON, a request
/// carries unknown members, or a scenario fails validation.
pub fn decode_requests(payload: &str) -> Result<RequestFrame, ScenarioError> {
    let doc = parse(payload)?;
    match &doc {
        JsonValue::Array(items) => {
            if items.is_empty() {
                return Err(ScenarioError::Spec("empty request batch".into()));
            }
            let requests = items
                .iter()
                .map(decode_request)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RequestFrame {
                requests,
                batch: true,
            })
        }
        _ => Ok(RequestFrame {
            requests: vec![decode_request(&doc)?],
            batch: false,
        }),
    }
}

fn decode_request(value: &JsonValue) -> Result<RunRequest, ScenarioError> {
    let JsonValue::Object(members) = value else {
        return Err(ScenarioError::Spec(format!(
            "request must be an object, found {}",
            value.type_name()
        )));
    };
    let mut id = None;
    let mut threads = None;
    let mut scenario = None;
    for (key, member) in members {
        match key.as_str() {
            "id" => {
                id = Some(
                    member
                        .as_str()
                        .ok_or_else(|| {
                            ScenarioError::Spec(format!(
                                "request `id` must be a string, found {}",
                                member.type_name()
                            ))
                        })?
                        .to_owned(),
                );
            }
            "threads" => {
                let v = member.as_f64().ok_or_else(|| {
                    ScenarioError::Spec(format!(
                        "request `threads` must be a number, found {}",
                        member.type_name()
                    ))
                })?;
                if v.fract() != 0.0 || !(1.0..=4096.0).contains(&v) {
                    return Err(ScenarioError::Spec(format!(
                        "request `threads` must be an integer in [1, 4096], got {v}"
                    )));
                }
                threads = Some(v as usize);
            }
            "scenario" => scenario = Some(ScenarioSpec::from_json_value(member)?),
            other => {
                return Err(ScenarioError::Spec(format!(
                    "unknown request member `{other}`"
                )))
            }
        }
    }
    let spec =
        scenario.ok_or_else(|| ScenarioError::Spec("request is missing `scenario`".into()))?;
    Ok(RunRequest {
        id: id.unwrap_or_default(),
        spec,
        threads,
    })
}

/// Renders one response (success or failure) as a JSON object.
pub fn encode_response(response: &Result<RunResponse, ScenarioError>, id: &str) -> String {
    match response {
        Ok(ok) => {
            let mut out = String::from("{\"id\":");
            out.push_str(&to_json(&ok.id));
            out.push_str(",\"scenario_hash\":");
            out.push_str(&to_json(&ok.scenario_hash));
            out.push_str(",\"cache_hit\":");
            out.push_str(if ok.cache_hit { "true" } else { "false" });
            out.push_str(",\"compile_micros\":");
            out.push_str(&ok.compile_micros.to_string());
            out.push_str(",\"queue_depth\":");
            out.push_str(&ok.queue_depth.to_string());
            out.push_str(",\"manifest\":");
            out.push_str(ok.manifest.trim_end());
            out.push('}');
            out
        }
        Err(err) => {
            let mut out = String::from("{\"id\":");
            out.push_str(&to_json(&id));
            out.push_str(",\"error\":");
            out.push_str(&to_json(&err.to_string()));
            out.push('}');
            out
        }
    }
}

/// Renders a batch of responses as a JSON array, in request order.
pub fn encode_responses(
    responses: &[Result<RunResponse, ScenarioError>],
    ids: &[String],
) -> String {
    let mut out = String::from("[");
    for (k, response) in responses.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&encode_response(response, ids.get(k).map_or("", |s| s)));
    }
    out.push(']');
    out
}

/// Renders a frame-level failure (unparseable request frame).
pub fn encode_frame_error(message: &str) -> String {
    format!("{{\"error\":{}}}", to_json(&message))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "proto-test",
        "rounds": 5,
        "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
        "workload": {"kind": "gathering", "strategy": "minimum_energy"}
    }"#;

    #[test]
    fn frame_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut reader = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader = std::io::Cursor::new(wire);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn single_and_batch_requests_decode() {
        let single = format!(r#"{{"id": "r1", "threads": 2, "scenario": {SPEC}}}"#);
        let frame = decode_requests(&single).unwrap();
        assert!(!frame.batch);
        assert_eq!(frame.requests[0].id, "r1");
        assert_eq!(frame.requests[0].threads, Some(2));

        let batch =
            format!(r#"[{{"id": "a", "scenario": {SPEC}}}, {{"id": "b", "scenario": {SPEC}}}]"#);
        let frame = decode_requests(&batch).unwrap();
        assert!(frame.batch);
        assert_eq!(frame.requests.len(), 2);
    }

    #[test]
    fn unknown_request_members_rejected() {
        let bad = format!(r#"{{"id": "r1", "speed": 11, "scenario": {SPEC}}}"#);
        let err = decode_requests(&bad).unwrap_err();
        assert!(err.to_string().contains("speed"), "{err}");
    }

    #[test]
    fn responses_render_as_parseable_json() {
        let ok = Ok(RunResponse {
            id: "r1".into(),
            scenario_hash: "00ff".into(),
            cache_hit: true,
            compile_micros: 12,
            queue_depth: 1,
            manifest: "{\n  \"experiment\": \"x\"\n}\n".into(),
        });
        let rendered = encode_response(&ok, "r1");
        let doc = parse(&rendered).unwrap();
        assert_eq!(doc.get("cache_hit"), Some(&JsonValue::Bool(true)));
        assert!(doc.get("manifest").is_some());

        let err: Result<RunResponse, ScenarioError> =
            Err(ScenarioError::Spec("boom \"quoted\"".into()));
        let rendered = encode_response(&err, "r9");
        let doc = parse(&rendered).unwrap();
        assert_eq!(doc.get("id").and_then(|v| v.as_str()), Some("r9"));
        assert!(doc
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("boom"));
    }
}
