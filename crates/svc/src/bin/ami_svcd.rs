//! The batch simulation daemon: binds `AMBIENCE_SVC_ADDR` (default
//! `127.0.0.1:9377`) and serves scenario requests forever. See
//! `ami_svc::proto` for the wire format.

use ami_svc::server::Server;
use ami_svc::{Service, DEFAULT_ADDR, SVC_ADDR_ENV};
use std::sync::Arc;

/// Compiled scenarios kept hot in the daemon's cache.
const CACHE_CAPACITY: usize = 64;

fn main() {
    let addr = std::env::var(SVC_ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_owned());
    let service = Arc::new(Service::new(CACHE_CAPACITY));
    let server = Server::bind(addr.as_str(), service)
        .unwrap_or_else(|err| panic!("cannot bind {addr}: {err}"));
    let bound = server.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    eprintln!("[ami-svcd listening on {bound}]");
    if let Err(err) = server.serve() {
        eprintln!("[ami-svcd accept failed: {err}]");
        std::process::exit(1);
    }
}
