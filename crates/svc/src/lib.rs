//! The batch simulation service: design-space-exploration requests in,
//! deterministic run manifests out.
//!
//! `ami-svc` fronts the [`ami_scenario`] engine with the "millions of
//! users" serving architecture the paper's ambient-intelligence vision
//! implies: scenario queries are *data*, compilation is amortized
//! behind a canonical-hash cache with single-flight dedup, and batches
//! of requests that share a compiled scenario execute it **once**.
//!
//! * [`Service`] — the in-process API: [`submit`](Service::submit) one
//!   [`RunRequest`], or [`submit_batch`](Service::submit_batch) many
//!   (identical specs collapse to one compile *and* one execution,
//!   which is sound because manifests are deterministic and
//!   thread-invariant);
//! * [`proto`] — the length-prefixed JSON frame format;
//! * [`server`] — a TCP server speaking [`proto`] frames, one thread
//!   per connection, all sharing one [`Service`].
//!
//! Every response carries per-request metrics — cache hit/miss, compile
//! time, queue depth at admission — *outside* the manifest, so the
//! deterministic artifact stays byte-identical however it was served.
//!
//! # Example
//!
//! ```
//! use ami_scenario::ScenarioSpec;
//! use ami_svc::{RunRequest, Service};
//!
//! let service = Service::new(8);
//! let spec = ScenarioSpec::from_json_str(r#"{
//!     "name": "svc-doc",
//!     "rounds": 5,
//!     "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}
//! }"#).unwrap();
//! let first = service.submit(&RunRequest::new("r1", spec.clone())).unwrap();
//! let second = service.submit(&RunRequest::new("r2", spec)).unwrap();
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.manifest, second.manifest);
//! assert_eq!(service.cache_stats().compiles, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod server;

use ami_scenario::{CacheStats, ScenarioCache, ScenarioError, ScenarioSpec};
use ami_sim::obs::CounterTree;
use ami_sim::runner::thread_count;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Environment variable naming the address the service daemon binds
/// (`AMBIENCE_SVC_ADDR`, default `127.0.0.1:9377`).
pub const SVC_ADDR_ENV: &str = "AMBIENCE_SVC_ADDR";

/// The default daemon bind address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:9377";

/// One DSE request: a scenario plus how to run it.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Caller-chosen request id, echoed in the response.
    pub id: String,
    /// The scenario to execute.
    pub spec: ScenarioSpec,
    /// Worker threads for this run; `None` follows `AMBIENCE_THREADS`.
    /// Results are thread-invariant either way.
    pub threads: Option<usize>,
}

impl RunRequest {
    /// A request running `spec` at the ambient thread count.
    pub fn new(id: impl Into<String>, spec: ScenarioSpec) -> Self {
        Self {
            id: id.into(),
            spec,
            threads: None,
        }
    }
}

/// The service's answer to one request: the deterministic manifest plus
/// serving metrics that live outside it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResponse {
    /// The request id, echoed.
    pub id: String,
    /// Canonical scenario hash (16 hex digits).
    pub scenario_hash: String,
    /// True when the compiled artifact came from the cache (including
    /// batch-mates of a compiling request).
    pub cache_hit: bool,
    /// Wall-clock microseconds spent compiling, zero on a hit.
    pub compile_micros: u64,
    /// Requests in flight when this one was admitted (including it).
    pub queue_depth: u64,
    /// The rendered [`RunManifest`](ami_sim::obs::RunManifest) JSON —
    /// byte-identical for equal specs, whatever the serving path.
    pub manifest: String,
}

/// The long-lived batch service. Cheap to share behind an `Arc`; all
/// methods take `&self`.
#[derive(Debug)]
pub struct Service {
    cache: ScenarioCache,
    requests: AtomicU64,
    batches: AtomicU64,
    executions: AtomicU64,
    in_flight: AtomicU64,
}

impl Service {
    /// A service whose compile cache holds `cache_capacity` scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity` is zero.
    pub fn new(cache_capacity: usize) -> Self {
        Self {
            cache: ScenarioCache::new(cache_capacity),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        }
    }

    /// Executes one request.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] when the spec fails validation; nothing is
    /// cached or executed in that case.
    pub fn submit(&self, request: &RunRequest) -> Result<RunResponse, ScenarioError> {
        let depth = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let result = self.execute(request, depth);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Executes a batch, collapsing requests that share a canonical
    /// hash to **one compile and one execution**; every batch-mate gets
    /// the identical manifest. Responses come back in request order,
    /// each spec failing validation on its own.
    pub fn submit_batch(&self, requests: &[RunRequest]) -> Vec<Result<RunResponse, ScenarioError>> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let depth = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        let mut responses: Vec<Option<Result<RunResponse, ScenarioError>>> =
            (0..requests.len()).map(|_| None).collect();
        // (hash, index of the request that ran it)
        let mut executed: Vec<(ami_scenario::ScenarioHash, usize)> = Vec::new();
        for (k, request) in requests.iter().enumerate() {
            if request.spec.validate().is_err() {
                responses[k] = Some(self.execute(request, depth));
                continue;
            }
            let hash = request.spec.hash();
            if let Some(&(_, leader)) = executed.iter().find(|&&(h, _)| h == hash) {
                let led = responses[leader]
                    .as_ref()
                    .expect("leader executed before its batch-mates")
                    .as_ref()
                    .expect("validated batch leader cannot fail");
                responses[k] = Some(Ok(RunResponse {
                    id: request.id.clone(),
                    cache_hit: true,
                    compile_micros: 0,
                    ..led.clone()
                }));
                continue;
            }
            responses[k] = Some(self.execute(request, depth));
            executed.push((hash, k));
        }
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        responses
            .into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }

    fn execute(&self, request: &RunRequest, depth: u64) -> Result<RunResponse, ScenarioError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (compiled, cache_hit) = self.cache.get_or_compile(&request.spec)?;
        let compile_micros = if cache_hit {
            0
        } else {
            started.elapsed().as_micros() as u64
        };
        let threads = request.threads.unwrap_or_else(thread_count).max(1);
        self.executions.fetch_add(1, Ordering::Relaxed);
        let manifest = compiled.run_threads(threads).to_json();
        Ok(RunResponse {
            id: request.id.clone(),
            scenario_hash: compiled.hash().to_string(),
            cache_hit,
            compile_micros,
            queue_depth: depth,
            manifest,
        })
    }

    /// Compile-cache counters (hits, misses, compiles, evictions,
    /// single-flight waits).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The service counters as an [`ami_sim::obs`] counter tree, for
    /// embedding in monitoring manifests.
    pub fn metrics(&self) -> CounterTree {
        let cache = self.cache.stats();
        CounterTree::branch([
            (
                "requests",
                CounterTree::branch([
                    (
                        "total",
                        CounterTree::leaf(self.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "batches",
                        CounterTree::leaf(self.batches.load(Ordering::Relaxed)),
                    ),
                    (
                        "executions",
                        CounterTree::leaf(self.executions.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                CounterTree::branch([
                    ("compiles", CounterTree::leaf(cache.compiles)),
                    ("hits", CounterTree::leaf(cache.hits)),
                    ("misses", CounterTree::leaf(cache.misses)),
                    ("evictions", CounterTree::leaf(cache.evictions)),
                    ("coalesced", CounterTree::leaf(cache.coalesced)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rounds: u64) -> ScenarioSpec {
        ScenarioSpec::from_json_str(&format!(
            r#"{{
                "name": "svc-test",
                "rounds": {rounds},
                "topology": {{"kind": "grid", "side": 3, "spacing_m": 30.0}},
                "workload": {{"kind": "gathering", "strategy": "minimum_energy"}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_requests_share_one_compile() {
        let service = Service::new(4);
        let a = service.submit(&RunRequest::new("a", spec(5))).unwrap();
        let b = service.submit(&RunRequest::new("b", spec(5))).unwrap();
        assert!(!a.cache_hit && b.cache_hit);
        assert_eq!(a.manifest, b.manifest);
        assert_eq!(a.scenario_hash, b.scenario_hash);
        assert_eq!(b.compile_micros, 0);
        assert_eq!(service.cache_stats().compiles, 1);
    }

    #[test]
    fn batch_collapses_duplicates_to_one_execution() {
        let service = Service::new(4);
        let requests = vec![
            RunRequest::new("r1", spec(5)),
            RunRequest::new("r2", spec(6)),
            RunRequest::new("r3", spec(5)),
        ];
        let responses = service.submit_batch(&requests);
        let ok: Vec<&RunResponse> = responses.iter().map(|r| r.as_ref().unwrap()).collect();
        assert_eq!(ok[0].manifest, ok[2].manifest);
        assert_ne!(ok[0].manifest, ok[1].manifest);
        assert!(ok[2].cache_hit, "batch-mate rides the leader's run");
        assert_eq!(ok[2].id, "r3");
        assert_eq!(service.cache_stats().compiles, 2);
        // Two distinct hashes → two executions, not three.
        assert_eq!(service.executions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn invalid_specs_fail_individually_inside_a_batch() {
        let service = Service::new(4);
        let mut bad = spec(5);
        bad.rounds = 0;
        let responses = service.submit_batch(&[
            RunRequest::new("good", spec(5)),
            RunRequest::new("bad", bad),
        ]);
        assert!(responses[0].is_ok());
        assert!(responses[1].is_err());
    }

    #[test]
    fn thread_choice_does_not_change_the_manifest() {
        let service = Service::new(4);
        let mut one = RunRequest::new("one", spec(8));
        one.threads = Some(1);
        let mut four = RunRequest::new("four", spec(8));
        four.threads = Some(4);
        let a = service.submit(&one).unwrap();
        let b = service.submit(&four).unwrap();
        assert_eq!(a.manifest, b.manifest);
    }
}
