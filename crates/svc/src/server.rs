//! The TCP front door: [`proto`](crate::proto) frames over a socket,
//! one handler thread per connection, one shared [`Service`].
//!
//! Connections are long-lived: a client may send any number of request
//! frames and reads one response frame per request frame, in order.
//! A malformed frame gets a frame-level error response and the
//! connection stays open; the connection ends at clean EOF.
//!
//! # Example
//!
//! ```
//! use ami_svc::server::Server;
//! use ami_svc::proto::{read_frame, write_frame};
//! use ami_svc::Service;
//! use std::sync::Arc;
//!
//! let server = Server::bind("127.0.0.1:0", Arc::new(Service::new(4))).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.serve());
//!
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! let request = r#"{"id": "doc", "threads": 1, "scenario": {
//!     "name": "server-doc", "rounds": 5,
//!     "topology": {"kind": "grid", "side": 3, "spacing_m": 30.0},
//!     "workload": {"kind": "gathering", "strategy": "minimum_energy"}}}"#;
//! write_frame(&mut conn, request.as_bytes()).unwrap();
//! let reply = read_frame(&mut conn).unwrap().unwrap();
//! assert!(String::from_utf8(reply).unwrap().contains("\"scenario_hash\""));
//! ```

use crate::proto::{
    decode_requests, encode_frame_error, encode_response, encode_responses, read_frame, write_frame,
};
use crate::Service;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A listening batch-service endpoint.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick one).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<Service>) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread each. Returns
    /// only on an accept error.
    ///
    /// # Errors
    ///
    /// The accept failure that ended the loop.
    pub fn serve(self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || {
                // A dropped connection is the client's business, not a
                // server failure.
                let _ = handle_connection(stream, &service);
            });
        }
    }
}

/// Serves one connection until clean EOF or an I/O error.
fn handle_connection(mut stream: TcpStream, service: &Service) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let reply = match std::str::from_utf8(&payload) {
            Err(_) => encode_frame_error("request frame is not UTF-8"),
            Ok(text) => match decode_requests(text) {
                Err(err) => encode_frame_error(&err.to_string()),
                Ok(frame) => {
                    if frame.batch {
                        let ids: Vec<String> =
                            frame.requests.iter().map(|r| r.id.clone()).collect();
                        let responses = service.submit_batch(&frame.requests);
                        encode_responses(&responses, &ids)
                    } else {
                        let request = &frame.requests[0];
                        let response = service.submit(request);
                        encode_response(&response, &request.id)
                    }
                }
            },
        };
        write_frame(&mut stream, reply.as_bytes())?;
    }
    Ok(())
}
