//! Architecture component models: the silicon building blocks of ambient
//! devices.
//!
//! The keynote's three case studies are SoC budgeting exercises. This crate
//! supplies the budgetable components:
//!
//! * [`Processor`] — compute engines across the flexibility–efficiency
//!   spectrum (hardwired ASIC → general-purpose CPU), grounded in the
//!   `ami-tech` intrinsic-efficiency bound;
//! * [`Memory`] — SRAM/DRAM/flash with per-access and static energy;
//! * [`Adc`]/[`Dac`] — data converters via the figure-of-merit law
//!   `P = FoM · 2^ENOB · f_s`;
//! * [`RfFrontEnd`] — analog radio front-ends with bias and startup costs;
//! * [`Display`] — the dominant interface load of personal devices;
//! * [`Soc`] — a composition of the above with a budget breakdown.
//! * [`Kernel`] — workload kernels (DCT, FIR, audio decode) that translate
//!   application rates into required MOPS.
//!
//! # Example
//!
//! ```
//! use ami_arch::{ArchitectureClass, Processor};
//! use ami_tech::TechnologyNode;
//!
//! let node = TechnologyNode::n130();
//! let asic = Processor::new("dct", ArchitectureClass::Asic, node.clone());
//! let cpu = Processor::new("risc", ArchitectureClass::Cpu, node);
//! // The flexibility gap: orders of magnitude in energy per operation.
//! let gap = cpu.energy_per_op_nominal().as_joules_per_op()
//!     / asic.energy_per_op_nominal().as_joules_per_op();
//! assert!(gap > 100.0);
//! ```

pub mod converter;
pub mod display;
pub mod interconnect;
pub mod kernel;
pub mod memory;
pub mod processor;
pub mod rf;
pub mod soc;

pub use converter::{Adc, Dac};
pub use display::Display;
pub use interconnect::Interconnect;
pub use kernel::Kernel;
pub use memory::{Memory, MemoryKind};
pub use processor::{ArchitectureClass, Processor};
pub use rf::RfFrontEnd;
pub use soc::{BudgetLine, Soc, SocBuilder};
