//! SoC composition: a named bundle of components with a power-budget
//! breakdown — the tool behind the case-study budget tables (T2).

use ami_units::Power;
use serde::{Deserialize, Serialize};

/// One line of a power budget: a component and its average power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetLine {
    /// Component name.
    pub name: String,
    /// Average power of the component at the chosen operating point.
    pub power: Power,
}

/// A system-on-chip (or system-in-package) as a list of budget lines.
///
/// Components are *evaluated by the caller* at a chosen operating point and
/// entered as averages; `Soc` is the accounting layer, deliberately free of
/// operating-point logic so it can mix heterogeneous component models.
///
/// # Example
///
/// ```
/// use ami_arch::SocBuilder;
/// use ami_units::Power;
///
/// let soc = SocBuilder::new("sensor node")
///     .component("radio", Power::from_microwatts(150.0))
///     .component("mcu", Power::from_microwatts(40.0))
///     .component("sensor", Power::from_microwatts(10.0))
///     .build();
/// assert!((soc.total().as_microwatts() - 200.0).abs() < 1e-9);
/// assert_eq!(soc.dominant().unwrap().name, "radio");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Soc {
    name: String,
    lines: Vec<BudgetLine>,
}

impl Soc {
    /// System name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The budget lines in insertion order.
    pub fn lines(&self) -> &[BudgetLine] {
        &self.lines
    }

    /// Total average power.
    pub fn total(&self) -> Power {
        self.lines.iter().map(|l| l.power).sum()
    }

    /// The component with the largest share, if any.
    pub fn dominant(&self) -> Option<&BudgetLine> {
        self.lines.iter().max_by(|a, b| a.power.total_cmp(&b.power))
    }

    /// Share of `line` in the total, in `[0, 1]` (zero for an empty budget).
    pub fn share(&self, line: &BudgetLine) -> f64 {
        let total = self.total().as_watts();
        if total == 0.0 {
            0.0
        } else {
            line.power.as_watts() / total
        }
    }

    /// Renders the budget as aligned text rows (component, power, share).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let width = self
            .lines
            .iter()
            .map(|l| l.name.len())
            .chain(std::iter::once("TOTAL".len()))
            .max()
            .unwrap_or(5);
        for line in &self.lines {
            out.push_str(&format!(
                "{:width$}  {:>12}  {:>5.1}%\n",
                line.name,
                line.power.to_string(),
                100.0 * self.share(line),
            ));
        }
        out.push_str(&format!(
            "{:width$}  {:>12}  100.0%\n",
            "TOTAL",
            self.total().to_string(),
        ));
        out
    }
}

/// Builder for [`Soc`].
#[derive(Debug, Clone, Default)]
pub struct SocBuilder {
    name: String,
    lines: Vec<BudgetLine>,
}

impl SocBuilder {
    /// Starts a budget for the named system.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            lines: Vec::new(),
        }
    }

    /// Adds a component with its average power.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative.
    #[must_use]
    pub fn component(mut self, name: impl Into<String>, power: Power) -> Self {
        assert!(!power.is_negative(), "component power must be non-negative");
        self.lines.push(BudgetLine {
            name: name.into(),
            power,
        });
        self
    }

    /// Finalizes the budget.
    pub fn build(self) -> Soc {
        Soc {
            name: self.name,
            lines: self.lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> Soc {
        SocBuilder::new("test")
            .component("a", Power::from_milliwatts(30.0))
            .component("b", Power::from_milliwatts(60.0))
            .component("c", Power::from_milliwatts(10.0))
            .build()
    }

    #[test]
    fn total_and_shares() {
        let s = soc();
        assert!((s.total().as_milliwatts() - 100.0).abs() < 1e-12);
        let b = &s.lines()[1];
        assert!((s.share(b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dominant_component() {
        assert_eq!(soc().dominant().unwrap().name, "b");
        let empty = SocBuilder::new("empty").build();
        assert!(empty.dominant().is_none());
        assert_eq!(empty.total(), Power::ZERO);
    }

    #[test]
    fn table_contains_all_rows() {
        let t = soc().table();
        for name in ["a", "b", "c", "TOTAL"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("60.0%"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_component_rejected() {
        let _ = SocBuilder::new("bad").component("x", Power::from_watts(-1.0));
    }
}
