//! On-chip interconnect energy: buses versus segmented (NoC-style) links.
//!
//! By 2003, moving a bit across a die cost as much as computing on it —
//! the DATE 2003 proceedings are full of network-on-chip papers for this
//! reason. The model here is first-order: wire energy per bit per
//! millimetre from the node's wiring capacitance, a shared bus that
//! charges the full backbone every transfer, and a segmented fabric that
//! charges only the Manhattan path plus per-hop router overhead.

use ami_tech::TechnologyNode;
use ami_units::{Capacitance, DataVolume, Energy, Length};
use serde::{Deserialize, Serialize};

/// Wire capacitance per millimetre, scaled from the 130 nm anchor of
/// ≈0.2 pF/mm (global wire with repeaters).
fn wire_cap_per_mm(node: &TechnologyNode) -> Capacitance {
    let scale = node.feature_size().as_nanometers() / 130.0;
    Capacitance::from_picofarads(0.2 * scale.sqrt())
}

/// On-chip communication fabric of a given die-scale span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    node: TechnologyNode,
    /// Backbone length of the shared bus / edge length of the fabric.
    span: Length,
    /// Number of router hops a segmented transfer crosses on average.
    mean_hops: f64,
    /// Gate equivalents switched per bit per router (buffering + arbitration).
    router_gates_per_bit: f64,
}

impl Interconnect {
    /// Creates a fabric over a die of the given span.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not positive, or hop/router parameters are not
    /// positive and finite.
    pub fn new(
        node: TechnologyNode,
        span: Length,
        mean_hops: f64,
        router_gates_per_bit: f64,
    ) -> Self {
        assert!(span.as_meters() > 0.0, "span must be positive");
        assert!(
            mean_hops.is_finite() && mean_hops >= 1.0,
            "mean hops must be >= 1"
        );
        assert!(
            router_gates_per_bit.is_finite() && router_gates_per_bit > 0.0,
            "router cost must be positive"
        );
        Self {
            node,
            span,
            mean_hops,
            router_gates_per_bit,
        }
    }

    /// A 10 mm-die fabric with 3-hop average paths and 20 gate-switches of
    /// router overhead per bit per hop.
    pub fn typical_soc(node: TechnologyNode) -> Self {
        Self::new(node, Length::from_millimeters(10.0), 3.0, 20.0)
    }

    /// Energy to move one bit over `distance` of repeated wire.
    pub fn wire_energy_per_bit(&self, distance: Length) -> Energy {
        assert!(!distance.is_negative(), "distance must be non-negative");
        let cap =
            Capacitance::new(wire_cap_per_mm(&self.node).as_farads() * distance.as_meters() * 1e3);
        // Half-swing statistics: charge the full CV² on average every
        // second bit → ½·C·V².
        cap.stored_energy(self.node.vdd_nominal())
    }

    /// Shared-bus transfer: every bit charges the full backbone.
    pub fn bus_transfer_energy(&self, volume: DataVolume) -> Energy {
        self.wire_energy_per_bit(self.span) * volume.as_bits()
    }

    /// Segmented (NoC-style) transfer: bits traverse only the mean path
    /// (`span × hops / (hops + 1)` per segment geometry is folded into the
    /// caller's `mean_hops` choice) plus router overhead per hop.
    pub fn segmented_transfer_energy(&self, volume: DataVolume) -> Energy {
        let segment = Length::from_meters(self.span.as_meters() / self.mean_hops);
        let wire = self.wire_energy_per_bit(segment) * volume.as_bits() * self.mean_hops;
        let router = Energy::new(
            self.router_gates_per_bit
                * self.mean_hops
                * self
                    .node
                    .dynamic_energy_per_gate(self.node.vdd_nominal())
                    .as_joules()
                * volume.as_bits(),
        );
        wire + router
    }

    /// Ratio of bus to segmented energy for a transfer (>1 favours the
    /// segmented fabric). With this first-order wire model the wire cost
    /// is path-length-linear, so the advantage comes entirely from
    /// *locality*: transfers shorter than the full backbone.
    pub fn segmentation_advantage(&self, volume: DataVolume, path: Length) -> f64 {
        assert!(path <= self.span, "path cannot exceed the die span");
        let hops = (path.as_meters() / (self.span.as_meters() / self.mean_hops))
            .ceil()
            .max(1.0);
        let local = Interconnect {
            mean_hops: hops,
            span: path.max(Length::from_millimeters(0.1)),
            ..self.clone()
        };
        self.bus_transfer_energy(volume).as_joules()
            / local.segmented_transfer_energy(volume).as_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Interconnect {
        Interconnect::typical_soc(TechnologyNode::n130())
    }

    #[test]
    fn crossing_a_die_costs_picojoules_per_bit() {
        // 10 mm at 0.2 pF/mm and 1.2 V: ½·2pF·1.44 ≈ 1.4 pJ/bit — the
        // 2003 "communication costs as much as computation" observation
        // (an ASIC op is ~1.8 pJ at this node).
        let e = fabric().wire_energy_per_bit(Length::from_millimeters(10.0));
        assert!(e.as_picojoules() > 0.5 && e.as_picojoules() < 5.0, "{e}");
    }

    #[test]
    fn bus_charges_full_backbone() {
        let f = fabric();
        let word = DataVolume::from_bytes(4.0);
        let bus = f.bus_transfer_energy(word);
        let expected = f.wire_energy_per_bit(Length::from_millimeters(10.0)) * 32.0;
        assert!((bus.as_joules() - expected.as_joules()).abs() < 1e-18);
    }

    #[test]
    fn segmented_pays_router_overhead_on_global_transfers() {
        // For a transfer spanning the whole die, segmentation only adds
        // router energy: the bus wins.
        let f = fabric();
        let word = DataVolume::from_bytes(4.0);
        assert!(f.segmented_transfer_energy(word) > f.bus_transfer_energy(word));
    }

    #[test]
    fn locality_is_where_segmentation_wins() {
        // A transfer between adjacent tiles (1/3 of the die) beats the
        // full-backbone bus.
        let f = fabric();
        let word = DataVolume::from_bytes(4.0);
        let advantage = f.segmentation_advantage(word, Length::from_millimeters(3.0));
        assert!(
            advantage > 1.0,
            "local traffic must favour the fabric: {advantage:.2}"
        );
        // While a full-span transfer does not.
        let global = f.segmentation_advantage(word, Length::from_millimeters(10.0));
        assert!(global < advantage);
    }

    #[test]
    fn scaling_lowers_wire_energy_sublinearly() {
        let old = Interconnect::typical_soc(TechnologyNode::n250());
        let new = Interconnect::typical_soc(TechnologyNode::n65());
        let d = Length::from_millimeters(5.0);
        let ratio = old.wire_energy_per_bit(d).as_joules() / new.wire_energy_per_bit(d).as_joules();
        // Voltage² wins but wire cap shrinks only with sqrt(feature):
        // far less than the ~25x a logic gate gains.
        assert!(ratio > 2.0 && ratio < 25.0, "ratio {ratio:.1}");
    }

    #[test]
    #[should_panic(expected = "exceed the die span")]
    fn overlong_path_rejected() {
        let f = fabric();
        let _ =
            f.segmentation_advantage(DataVolume::from_bytes(1.0), Length::from_millimeters(20.0));
    }
}
