//! Compute engines across the flexibility–efficiency spectrum.
//!
//! The central IC-design tension the keynote identifies: programmability
//! costs energy. A hardwired datapath achieves the technology's intrinsic
//! computational efficiency; every layer of flexibility (instruction fetch,
//! decode, register files, caches, configuration fabric) multiplies the
//! energy per useful operation. The overhead factors below are calibrated
//! to the early-2000s published spread (e.g. the oft-quoted 100–1000×
//! ASIC-vs-CPU gap).

use ami_tech::{ice, TechnologyNode};
use ami_units::{ComputeEfficiency, ComputeRate, EnergyPerOp, Frequency, Power, Voltage};
use serde::{Deserialize, Serialize};

/// Architecture class, ordered from least to most flexible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArchitectureClass {
    /// Hardwired datapath: pays only the intrinsic cost.
    Asic,
    /// Application-specific instruction-set processor.
    Asip,
    /// Programmable DSP with tuned datapaths.
    Dsp,
    /// Reconfigurable fabric (embedded FPGA).
    Fpga,
    /// General-purpose RISC CPU.
    Cpu,
}

impl ArchitectureClass {
    /// Energy overhead per operation relative to the hardwired bound.
    ///
    /// Calibration: ASIC 1×, ASIP 5×, DSP 20×, FPGA 60×, CPU 400× — the
    /// geometric centre of the published 2001–2004 spread.
    pub fn energy_overhead(self) -> f64 {
        match self {
            ArchitectureClass::Asic => 1.0,
            ArchitectureClass::Asip => 5.0,
            ArchitectureClass::Dsp => 20.0,
            ArchitectureClass::Fpga => 60.0,
            ArchitectureClass::Cpu => 400.0,
        }
    }

    /// *Useful* operations retired per clock cycle on signal-processing
    /// workloads: raw datapath parallelism discounted by the instruction
    /// and control overhead of the class. An ASIC pipeline retires 16
    /// useful ops each cycle; a DSP's 4-issue datapath loses ~4× to
    /// address/loop/pack instructions; a load-store RISC CPU retires only
    /// ~0.12 useful kernel ops per cycle — the classic ~100× throughput
    /// gap at equal clock.
    pub fn ops_per_cycle(self) -> f64 {
        match self {
            ArchitectureClass::Asic => 16.0,
            ArchitectureClass::Asip => 2.8,
            ArchitectureClass::Dsp => 1.0,
            ArchitectureClass::Fpga => 3.2,
            ArchitectureClass::Cpu => 0.12,
        }
    }

    /// Logic size in gate equivalents of a representative instance.
    pub fn gate_count(self) -> f64 {
        match self {
            ArchitectureClass::Asic => 30e3,
            ArchitectureClass::Asip => 80e3,
            ArchitectureClass::Dsp => 200e3,
            ArchitectureClass::Fpga => 500e3,
            ArchitectureClass::Cpu => 300e3,
        }
    }

    /// All classes, least-flexible first.
    pub fn all() -> [ArchitectureClass; 5] {
        [
            ArchitectureClass::Asic,
            ArchitectureClass::Asip,
            ArchitectureClass::Dsp,
            ArchitectureClass::Fpga,
            ArchitectureClass::Cpu,
        ]
    }
}

impl std::fmt::Display for ArchitectureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArchitectureClass::Asic => "ASIC",
            ArchitectureClass::Asip => "ASIP",
            ArchitectureClass::Dsp => "DSP",
            ArchitectureClass::Fpga => "FPGA",
            ArchitectureClass::Cpu => "CPU",
        };
        f.write_str(s)
    }
}

/// A compute engine instantiated on a technology node.
///
/// # Example
///
/// ```
/// use ami_arch::{ArchitectureClass, Processor};
/// use ami_tech::TechnologyNode;
/// use ami_units::ComputeRate;
///
/// let dsp = Processor::new("audio", ArchitectureClass::Dsp, TechnologyNode::n130());
/// let p = dsp.power_for_throughput(ComputeRate::from_mops(50.0)).unwrap();
/// assert!(p.as_milliwatts() < 10.0); // audio decode fits a mW budget
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    name: String,
    class: ArchitectureClass,
    node: TechnologyNode,
    /// Idle-mode activity relative to full activity (clock gating quality).
    idle_activity: f64,
}

impl Processor {
    /// Creates a processor of the given class on `node`.
    pub fn new(name: impl Into<String>, class: ArchitectureClass, node: TechnologyNode) -> Self {
        Self {
            name: name.into(),
            class,
            node,
            idle_activity: 0.02,
        }
    }

    /// Name of this instance.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architecture class.
    pub fn class(&self) -> ArchitectureClass {
        self.class
    }

    /// Technology node.
    pub fn node(&self) -> &TechnologyNode {
        &self.node
    }

    /// Energy per useful operation at supply `vdd`: the intrinsic cost
    /// times the class overhead.
    pub fn energy_per_op(&self, vdd: Voltage) -> EnergyPerOp {
        EnergyPerOp::new(
            ice::intrinsic_energy_per_op(&self.node, vdd).as_joules_per_op()
                * self.class.energy_overhead(),
        )
    }

    /// Energy per operation at the node's nominal supply.
    pub fn energy_per_op_nominal(&self) -> EnergyPerOp {
        self.energy_per_op(self.node.vdd_nominal())
    }

    /// Computational efficiency at supply `vdd`.
    pub fn efficiency(&self, vdd: Voltage) -> ComputeEfficiency {
        self.energy_per_op(vdd).to_efficiency()
    }

    /// Peak throughput at supply `vdd` (clock × ops/cycle).
    pub fn peak_throughput(&self, vdd: Voltage) -> ComputeRate {
        ComputeRate::new(self.node.frequency_at(vdd).as_hertz() * self.class.ops_per_cycle())
    }

    /// Peak throughput at nominal supply.
    pub fn peak_throughput_nominal(&self) -> ComputeRate {
        self.peak_throughput(self.node.vdd_nominal())
    }

    /// Total power while sustaining `throughput` at the *lowest feasible
    /// supply* (ideal DVS), including leakage. Returns `None` when the
    /// throughput exceeds the nominal-supply peak.
    pub fn power_for_throughput(&self, throughput: ComputeRate) -> Option<Power> {
        let required_clock =
            Frequency::new(throughput.as_ops_per_second() / self.class.ops_per_cycle());
        let vdd = self.node.min_vdd_for(required_clock)?;
        Some(self.power_at(throughput, vdd))
    }

    /// Total power sustaining `throughput` at a fixed supply `vdd`
    /// (dynamic switching for the useful work plus leakage of the whole
    /// engine). Does not check feasibility.
    pub fn power_at(&self, throughput: ComputeRate, vdd: Voltage) -> Power {
        let dynamic =
            Power::new(self.energy_per_op(vdd).as_joules_per_op() * throughput.as_ops_per_second());
        let leak =
            self.node
                .leakage_power(self.class.gate_count(), vdd, ami_units::Temperature::ROOM);
        dynamic + leak
    }

    /// Idle power at supply `vdd`: residual (clock-gated) switching at
    /// `idle_activity` of the peak dynamic power, plus leakage.
    pub fn idle_power(&self, vdd: Voltage) -> Power {
        let peak_dynamic = Power::new(
            self.energy_per_op(vdd).as_joules_per_op()
                * self.peak_throughput(vdd).as_ops_per_second(),
        );
        peak_dynamic * self.idle_activity
            + self
                .node
                .leakage_power(self.class.gate_count(), vdd, ami_units::Temperature::ROOM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> TechnologyNode {
        TechnologyNode::n130()
    }

    #[test]
    fn flexibility_gap_spans_two_to_three_decades() {
        let asic = Processor::new("a", ArchitectureClass::Asic, node());
        let cpu = Processor::new("c", ArchitectureClass::Cpu, node());
        let gap = cpu.energy_per_op_nominal().as_joules_per_op()
            / asic.energy_per_op_nominal().as_joules_per_op();
        assert!((100.0..=1000.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn efficiency_ordering_follows_flexibility() {
        let effs: Vec<f64> = ArchitectureClass::all()
            .iter()
            .map(|&c| {
                Processor::new("p", c, node())
                    .efficiency(node().vdd_nominal())
                    .as_ops_per_joule()
            })
            .collect();
        for pair in effs.windows(2) {
            assert!(pair[0] > pair[1], "efficiency must fall with flexibility");
        }
    }

    #[test]
    fn asic_hits_the_intrinsic_bound() {
        let asic = Processor::new("a", ArchitectureClass::Asic, node());
        let bound = ami_tech::intrinsic_efficiency(&node(), node().vdd_nominal());
        let got = asic.efficiency(node().vdd_nominal());
        assert!((got.as_ops_per_joule() / bound.as_ops_per_joule() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_for_throughput_uses_dvs() {
        let dsp = Processor::new("d", ArchitectureClass::Dsp, node());
        let light = ComputeRate::from_mops(10.0);
        let heavy = ComputeRate::from_mops(500.0);
        let p_light = dsp.power_for_throughput(light).unwrap();
        let p_heavy = dsp.power_for_throughput(heavy).unwrap();
        // Super-linear: 100x the throughput costs more than 100x the power
        // is false under DVS — the light point runs at reduced Vdd, so the
        // heavy point costs MORE than proportionally.
        let ratio = p_heavy.as_watts() / p_light.as_watts();
        assert!(ratio > 100.0, "expected super-linear cost, got {ratio:.1}");
    }

    #[test]
    fn infeasible_throughput_is_none() {
        let cpu = Processor::new("c", ArchitectureClass::Cpu, node());
        let beyond = ComputeRate::new(cpu.peak_throughput_nominal().as_ops_per_second() * 1.01);
        assert!(cpu.power_for_throughput(beyond).is_none());
    }

    #[test]
    fn dsp_audio_decode_fits_milliwatt_budget() {
        // The CS2 sanity anchor: ~50 MOPS of audio DSP in a few mW at 130 nm.
        let dsp = Processor::new("audio", ArchitectureClass::Dsp, node());
        let p = dsp
            .power_for_throughput(ComputeRate::from_mops(50.0))
            .unwrap();
        assert!(p.as_milliwatts() < 10.0, "got {}", p);
    }

    #[test]
    fn cpu_cannot_do_sd_video_in_watt_budget_but_asic_can() {
        // The CS3 sanity anchor (F5's shape).
        let n = TechnologyNode::n130();
        let sd_video = ComputeRate::from_gops(3.0);
        let asic = Processor::new("video", ArchitectureClass::Asic, n.clone());
        let cpu = Processor::new("risc", ArchitectureClass::Cpu, n);
        let p_asic = asic
            .power_for_throughput(sd_video)
            .expect("ASIC reaches SD");
        assert!(p_asic.as_watts() < 1.0, "ASIC SD video at {}", p_asic);
        match cpu.power_for_throughput(sd_video) {
            None => {} // cannot even reach the rate: acceptable failure mode
            Some(p) => assert!(p.as_watts() > 1.0, "CPU must bust the W budget"),
        }
    }

    #[test]
    fn idle_power_is_small_but_nonzero() {
        let dsp = Processor::new("d", ArchitectureClass::Dsp, node());
        let idle = dsp.idle_power(node().vdd_nominal());
        let busy = dsp
            .power_for_throughput(ComputeRate::from_mops(500.0))
            .unwrap();
        assert!(idle > Power::ZERO);
        assert!(idle < busy);
    }

    #[test]
    fn newer_node_is_more_efficient_for_same_class() {
        let old = Processor::new("d", ArchitectureClass::Dsp, TechnologyNode::n250());
        let new = Processor::new("d", ArchitectureClass::Dsp, TechnologyNode::n90());
        assert!(
            new.energy_per_op_nominal() < old.energy_per_op_nominal(),
            "scaling must reduce energy per op"
        );
    }
}
