//! Workload kernels: translating ambient functions into required MOPS.
//!
//! Experiments F5/T2 need application demand expressed as a compute rate.
//! A [`Kernel`] charges a calibrated operation count per work item; the
//! video and audio presets match the coarse complexity numbers the 2003
//! multimedia-SoC literature used (e.g. MPEG-2/4 decode complexity of a
//! few GOPS at SD, tens-to-hundreds of MOPS for audio codecs).

use ami_units::{ComputeRate, Frequency};
use serde::{Deserialize, Serialize};

/// A processing kernel charging `ops_per_item` operations per work item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    ops_per_item: f64,
}

/// Video formats of the 2003 era, smallest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VideoFormat {
    /// 176×144 — videophone class.
    Qcif,
    /// 352×288 — streaming class.
    Cif,
    /// 720×576 — standard-definition TV.
    Sd,
}

impl VideoFormat {
    /// Pixels per frame.
    pub fn pixels(self) -> f64 {
        match self {
            VideoFormat::Qcif => 176.0 * 144.0,
            VideoFormat::Cif => 352.0 * 288.0,
            VideoFormat::Sd => 720.0 * 576.0,
        }
    }

    /// All formats, smallest first.
    pub fn all() -> [VideoFormat; 3] {
        [VideoFormat::Qcif, VideoFormat::Cif, VideoFormat::Sd]
    }
}

impl std::fmt::Display for VideoFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VideoFormat::Qcif => "QCIF",
            VideoFormat::Cif => "CIF",
            VideoFormat::Sd => "SD",
        })
    }
}

impl Kernel {
    /// Creates a kernel charging `ops_per_item` operations per item.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_item` is not positive and finite.
    pub fn new(name: impl Into<String>, ops_per_item: f64) -> Self {
        assert!(
            ops_per_item.is_finite() && ops_per_item > 0.0,
            "ops per item must be positive"
        );
        Self {
            name: name.into(),
            ops_per_item,
        }
    }

    /// Video decode (IDCT + motion compensation + deblocking): ~130 ops
    /// per pixel, the MPEG-2/4 decoder complexity anchor. Item = pixel.
    pub fn video_decode() -> Self {
        Self::new("video decode", 130.0)
    }

    /// Audio (perceptual codec) decode: ~500 ops per output sample.
    /// Item = sample.
    pub fn audio_decode() -> Self {
        Self::new("audio decode", 500.0)
    }

    /// OFDM/channel decoding of a digital-radio broadcast: ~2 000 ops per
    /// information bit is folded into per-sample cost downstream; here we
    /// charge per demodulated symbol. Item = symbol.
    pub fn channel_decode() -> Self {
        Self::new("channel decode", 2000.0)
    }

    /// Sensor feature extraction (filter + threshold): 50 ops per sample.
    pub fn sensor_filter() -> Self {
        Self::new("sensor filter", 50.0)
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operations charged per work item.
    pub fn ops_per_item(&self) -> f64 {
        self.ops_per_item
    }

    /// Compute rate required to process items arriving at `item_rate`.
    pub fn required_rate(&self, item_rate: Frequency) -> ComputeRate {
        ComputeRate::new(self.ops_per_item * item_rate.as_hertz())
    }

    /// Compute rate for decoding `format` video at `fps` frames per second
    /// (valid for the [`Kernel::video_decode`] kernel or any per-pixel
    /// kernel).
    pub fn required_rate_video(&self, format: VideoFormat, fps: f64) -> ComputeRate {
        assert!(fps.is_finite() && fps > 0.0, "frame rate must be positive");
        ComputeRate::new(self.ops_per_item * format.pixels() * fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_video_decode_is_gops_class() {
        let rate = Kernel::video_decode().required_rate_video(VideoFormat::Sd, 25.0);
        assert!(
            rate.as_gops() > 1.0 && rate.as_gops() < 5.0,
            "SD decode should be a few GOPS, got {}",
            rate.as_gops()
        );
    }

    #[test]
    fn qcif_is_two_orders_below_sd() {
        let k = Kernel::video_decode();
        let sd = k.required_rate_video(VideoFormat::Sd, 25.0);
        let qcif = k.required_rate_video(VideoFormat::Qcif, 15.0);
        assert!(sd.as_ops_per_second() / qcif.as_ops_per_second() > 20.0);
    }

    #[test]
    fn audio_decode_is_tens_of_mops() {
        let rate = Kernel::audio_decode().required_rate(Frequency::from_kilohertz(48.0));
        assert!((rate.as_mops() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn sensor_filtering_is_sub_mops() {
        let rate = Kernel::sensor_filter().required_rate(Frequency::from_hertz(100.0));
        assert!(rate.as_mops() < 0.01);
    }

    #[test]
    fn formats_ascend() {
        let px: Vec<f64> = VideoFormat::all().iter().map(|f| f.pixels()).collect();
        assert!(px[0] < px[1] && px[1] < px[2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_kernel_rejected() {
        let _ = Kernel::new("nop", 0.0);
    }
}
