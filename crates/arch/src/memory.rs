//! Memory components: the other half of every SoC power budget.
//!
//! Access energies follow the early-2000s CACTI-flavoured scaling: per-access
//! energy grows roughly with the square root of capacity (bitline/wordline
//! length), SRAM is an order cheaper per access than external DRAM, and
//! flash reads sit between them while flash writes are two orders worse.

use ami_tech::TechnologyNode;
use ami_units::{DataVolume, Energy, Power, Temperature};
use serde::{Deserialize, Serialize};

/// Memory technology of a [`Memory`] component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// On-chip SRAM (caches, scratchpads).
    Sram,
    /// External or embedded DRAM.
    Dram,
    /// Non-volatile NOR/NAND flash.
    Flash,
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemoryKind::Sram => "SRAM",
            MemoryKind::Dram => "DRAM",
            MemoryKind::Flash => "flash",
        })
    }
}

/// A memory array of a given kind and capacity on a technology node.
///
/// # Example
///
/// ```
/// use ami_arch::{Memory, MemoryKind};
/// use ami_tech::TechnologyNode;
/// use ami_units::DataVolume;
///
/// let sram = Memory::new(MemoryKind::Sram, DataVolume::from_bytes(32.0 * 1024.0),
///                        TechnologyNode::n130());
/// let word = DataVolume::from_bytes(4.0);
/// assert!(sram.read_energy(word).as_picojoules() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Memory {
    kind: MemoryKind,
    capacity: DataVolume,
    node: TechnologyNode,
}

/// Reference per-bit read energy (pJ/bit) of a 32 KiB array at 130 nm.
fn base_read_pj_per_bit(kind: MemoryKind) -> f64 {
    match kind {
        MemoryKind::Sram => 0.4,
        MemoryKind::Dram => 4.0,
        MemoryKind::Flash => 1.5,
    }
}

/// Write-energy multiplier over read energy.
fn write_multiplier(kind: MemoryKind) -> f64 {
    match kind {
        MemoryKind::Sram => 1.1,
        MemoryKind::Dram => 1.2,
        MemoryKind::Flash => 100.0,
    }
}

const REFERENCE_BITS: f64 = 32.0 * 1024.0 * 8.0;
const REFERENCE_FEATURE_NM: f64 = 130.0;

impl Memory {
    /// Creates a memory array.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive.
    pub fn new(kind: MemoryKind, capacity: DataVolume, node: TechnologyNode) -> Self {
        assert!(capacity.as_bits() > 0.0, "memory capacity must be positive");
        Self {
            kind,
            capacity,
            node,
        }
    }

    /// Memory technology.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Array capacity.
    pub fn capacity(&self) -> DataVolume {
        self.capacity
    }

    /// Per-bit read energy: the 130 nm/32 KiB anchor scaled by
    /// `sqrt(capacity ratio)` (wire length) and by feature size (capacitance
    /// per unit length falls roughly linearly with scaling).
    fn read_pj_per_bit(&self) -> f64 {
        let size_factor = (self.capacity.as_bits() / REFERENCE_BITS).sqrt();
        let tech_factor = self.node.feature_size().as_nanometers() / REFERENCE_FEATURE_NM;
        base_read_pj_per_bit(self.kind) * size_factor * tech_factor
    }

    /// Energy to read `volume` from the array.
    pub fn read_energy(&self, volume: DataVolume) -> Energy {
        Energy::from_picojoules(self.read_pj_per_bit() * volume.as_bits())
    }

    /// Energy to write `volume` into the array.
    pub fn write_energy(&self, volume: DataVolume) -> Energy {
        Energy::from_picojoules(
            self.read_pj_per_bit() * write_multiplier(self.kind) * volume.as_bits(),
        )
    }

    /// Static (retention) power of the array: SRAM leaks through its cells
    /// (six transistors per bit), DRAM pays refresh, flash retains for free.
    pub fn static_power(&self, temp: Temperature) -> Power {
        match self.kind {
            MemoryKind::Sram => {
                // One gate-equivalent of leakage per ~2 bits (6T cell,
                // tall-cell transistors leak less than logic).
                let gate_equivalents = self.capacity.as_bits() / 2.0;
                self.node
                    .leakage_power(gate_equivalents, self.node.vdd_nominal(), temp)
                    * 0.3
            }
            MemoryKind::Dram => {
                // Refresh: ~1 µW per Mbit at 2003-era DRAM process.
                Power::from_microwatts(self.capacity.as_bits() / 1e6)
            }
            MemoryKind::Flash => Power::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ami_tech::TechnologyNode;

    fn kib(n: f64) -> DataVolume {
        DataVolume::from_bytes(n * 1024.0)
    }

    #[test]
    fn bigger_arrays_cost_more_per_access() {
        let node = TechnologyNode::n130();
        let small = Memory::new(MemoryKind::Sram, kib(8.0), node.clone());
        let large = Memory::new(MemoryKind::Sram, kib(512.0), node);
        let word = DataVolume::from_bytes(4.0);
        assert!(large.read_energy(word) > small.read_energy(word));
        // sqrt law: 64x capacity → 8x energy.
        let ratio = large.read_energy(word).as_joules() / small.read_energy(word).as_joules();
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn dram_access_costs_an_order_more_than_sram() {
        let node = TechnologyNode::n130();
        let sram = Memory::new(MemoryKind::Sram, kib(32.0), node.clone());
        let dram = Memory::new(MemoryKind::Dram, kib(32.0), node);
        let word = DataVolume::from_bytes(4.0);
        let ratio = dram.read_energy(word).as_joules() / sram.read_energy(word).as_joules();
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flash_writes_are_brutal() {
        let node = TechnologyNode::n130();
        let flash = Memory::new(MemoryKind::Flash, kib(128.0), node);
        let word = DataVolume::from_bytes(4.0);
        let ratio = flash.write_energy(word).as_joules() / flash.read_energy(word).as_joules();
        assert!((ratio - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_reduces_access_energy() {
        let old = Memory::new(MemoryKind::Sram, kib(32.0), TechnologyNode::n250());
        let new = Memory::new(MemoryKind::Sram, kib(32.0), TechnologyNode::n90());
        let word = DataVolume::from_bytes(4.0);
        assert!(new.read_energy(word) < old.read_energy(word));
    }

    #[test]
    fn static_power_ordering() {
        let node = TechnologyNode::n90();
        let temp = Temperature::ROOM;
        let sram = Memory::new(MemoryKind::Sram, kib(64.0), node.clone());
        let dram = Memory::new(MemoryKind::Dram, kib(64.0), node.clone());
        let flash = Memory::new(MemoryKind::Flash, kib(64.0), node);
        assert_eq!(flash.static_power(temp), Power::ZERO);
        assert!(sram.static_power(temp) > Power::ZERO);
        assert!(dram.static_power(temp) > Power::ZERO);
    }

    #[test]
    fn sram_leakage_grows_with_scaling() {
        // The 65 nm retention problem in one assert.
        let old = Memory::new(MemoryKind::Sram, kib(64.0), TechnologyNode::n250());
        let new = Memory::new(MemoryKind::Sram, kib(64.0), TechnologyNode::n65());
        assert!(
            new.static_power(Temperature::ROOM).as_watts()
                > 100.0 * old.static_power(Temperature::ROOM).as_watts()
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Memory::new(MemoryKind::Sram, DataVolume::ZERO, TechnologyNode::n130());
    }
}
