//! Data converters via the figure-of-merit law.
//!
//! Interface electronics — the bridge between the analog ambient and the
//! digital SoC — obeys a remarkably stable empirical law: converter power
//! is `P = FoM · 2^ENOB · f_s`, with the figure of merit (energy per
//! conversion step) improving slowly with technology. Circa 2003 the
//! state of the art sat near 1 pJ/conversion-step (cf. the DATE 2003
//! poster "Figure of Merit Based Selection of A/D Converters").

use ami_units::{Energy, Frequency, Power};
use serde::{Deserialize, Serialize};

/// The 2003 state-of-the-art ADC figure of merit, joules per conversion step.
pub const FOM_2003: f64 = 1e-12;

/// An analog-to-digital converter characterized by resolution, sample rate
/// and figure of merit.
///
/// # Example
///
/// ```
/// use ami_arch::Adc;
/// use ami_units::Frequency;
///
/// // A 12-bit 1 MS/s ADC at the 2003 FoM: ~4 mW.
/// let adc = Adc::new(12.0, Frequency::from_megahertz(1.0), ami_arch::converter::FOM_2003);
/// assert!((adc.power().as_milliwatts() - 4.096).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    enob: f64,
    sample_rate: Frequency,
    fom: f64,
}

impl Adc {
    /// Creates an ADC with the given effective number of bits, sample rate
    /// and figure of merit (J per conversion step).
    ///
    /// # Panics
    ///
    /// Panics if `enob` is not in `[1, 24]` or `fom` is not positive.
    pub fn new(enob: f64, sample_rate: Frequency, fom: f64) -> Self {
        assert!((1.0..=24.0).contains(&enob), "ENOB must lie in [1, 24]");
        assert!(fom.is_finite() && fom > 0.0, "FoM must be positive");
        Self {
            enob,
            sample_rate,
            fom,
        }
    }

    /// An ADC at the 2003 state-of-the-art FoM.
    pub fn state_of_the_art_2003(enob: f64, sample_rate: Frequency) -> Self {
        Self::new(enob, sample_rate, FOM_2003)
    }

    /// Effective number of bits.
    pub fn enob(&self) -> f64 {
        self.enob
    }

    /// Sample rate.
    pub fn sample_rate(&self) -> Frequency {
        self.sample_rate
    }

    /// Figure of merit in joules per conversion step.
    pub fn fom(&self) -> f64 {
        self.fom
    }

    /// Energy of one conversion: `FoM · 2^ENOB`.
    pub fn energy_per_sample(&self) -> Energy {
        Energy::new(self.fom * 2f64.powf(self.enob))
    }

    /// Continuous conversion power: `FoM · 2^ENOB · f_s`.
    pub fn power(&self) -> Power {
        Power::new(self.energy_per_sample().as_joules() * self.sample_rate.as_hertz())
    }
}

/// A digital-to-analog converter; first-order, the same FoM law applies
/// with a lighter class-AB output-stage overhead folded into the FoM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    inner: Adc,
}

impl Dac {
    /// Creates a DAC with the given resolution, update rate and FoM.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Adc::new`].
    pub fn new(enob: f64, update_rate: Frequency, fom: f64) -> Self {
        Self {
            inner: Adc::new(enob, update_rate, fom),
        }
    }

    /// Effective number of bits.
    pub fn enob(&self) -> f64 {
        self.inner.enob()
    }

    /// Continuous conversion power.
    pub fn power(&self) -> Power {
        self.inner.power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_doubles_per_bit() {
        let f = Frequency::from_megahertz(1.0);
        let a10 = Adc::state_of_the_art_2003(10.0, f);
        let a11 = Adc::state_of_the_art_2003(11.0, f);
        assert!((a11.power().as_watts() / a10.power().as_watts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_linear_in_sample_rate() {
        let a = Adc::state_of_the_art_2003(12.0, Frequency::from_kilohertz(100.0));
        let b = Adc::state_of_the_art_2003(12.0, Frequency::from_megahertz(10.0));
        assert!((b.power().as_watts() / a.power().as_watts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn audio_adc_is_low_milliwatts() {
        // 16-bit 48 kS/s audio capture ≈ 3 mW at the FoM bound: real audio
        // converters of the era sat at 5–20 mW — the FoM is a lower bound.
        let audio = Adc::state_of_the_art_2003(16.0, Frequency::from_kilohertz(48.0));
        let p = audio.power().as_milliwatts();
        assert!((1.0..10.0).contains(&p), "got {p} mW");
    }

    #[test]
    fn video_rate_high_res_is_milliwatts() {
        let video = Adc::state_of_the_art_2003(10.0, Frequency::from_megahertz(27.0));
        assert!(video.power().as_milliwatts() > 10.0);
    }

    #[test]
    fn dac_mirrors_adc_law() {
        let d = Dac::new(12.0, Frequency::from_megahertz(1.0), FOM_2003);
        let a = Adc::new(12.0, Frequency::from_megahertz(1.0), FOM_2003);
        assert_eq!(d.power(), a.power());
        assert_eq!(d.enob(), 12.0);
    }

    #[test]
    #[should_panic(expected = "ENOB")]
    fn absurd_resolution_rejected() {
        let _ = Adc::new(40.0, Frequency::from_megahertz(1.0), FOM_2003);
    }
}
