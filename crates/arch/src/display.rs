//! Displays — the "natural interfaces" load of the personal and static
//! classes.
//!
//! Display power is areal and barely technology-dependent: a transflective
//! LCD panel burns ~1 mW/cm² lit, a backlit one an order more, and a
//! 2003-era large display two orders more. This puts the interface on the
//! power–information graph far above the computation it fronts.

use ami_units::{Area, Power, PowerDensity, Ratio};
use serde::{Deserialize, Serialize};

/// Display panel technology class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PanelKind {
    /// Reflective/transflective LCD, no backlight (watch/sensor class).
    TransflectiveLcd,
    /// Backlit color LCD (PDA/phone class).
    BacklitLcd,
    /// Large plasma/CRT-class ambient panel (static class).
    LargePanel,
}

impl PanelKind {
    /// Full-brightness areal power density.
    pub fn density(self) -> PowerDensity {
        match self {
            // 1 mW/cm² ≡ 10 W/m² etc.
            PanelKind::TransflectiveLcd => PowerDensity::from_watts_per_square_meter(1.0),
            PanelKind::BacklitLcd => PowerDensity::from_watts_per_square_meter(150.0),
            PanelKind::LargePanel => PowerDensity::from_watts_per_square_meter(900.0),
        }
    }
}

/// A display of a given panel class and active area.
///
/// # Example
///
/// ```
/// use ami_arch::display::{Display, PanelKind};
/// use ami_units::{Area, Ratio};
///
/// let pda = Display::new(PanelKind::BacklitLcd, Area::from_square_centimeters(40.0));
/// let p = pda.power(Ratio::from_percent(60.0));
/// assert!(p.as_milliwatts() > 100.0); // the PDA's dominant load
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Display {
    kind: PanelKind,
    area: Area,
}

impl Display {
    /// Creates a display.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not positive.
    pub fn new(kind: PanelKind, area: Area) -> Self {
        assert!(
            area.as_square_meters() > 0.0,
            "display area must be positive"
        );
        Self { kind, area }
    }

    /// Panel class.
    pub fn kind(&self) -> PanelKind {
        self.kind
    }

    /// Active area.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Power at the given brightness setting.
    ///
    /// # Panics
    ///
    /// Panics if `brightness` is outside `[0, 1]`.
    pub fn power(&self, brightness: Ratio) -> Power {
        assert!(
            brightness.is_unit_interval(),
            "brightness must lie in [0, 1]"
        );
        self.kind.density() * self.area * brightness.as_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_power_spread_spans_three_decades() {
        let area = Area::from_square_centimeters(40.0);
        let lo = Display::new(PanelKind::TransflectiveLcd, area).power(Ratio::ONE);
        let hi = Display::new(PanelKind::LargePanel, area).power(Ratio::ONE);
        assert!(hi.as_watts() / lo.as_watts() > 500.0);
    }

    #[test]
    fn brightness_scales_linearly() {
        let d = Display::new(PanelKind::BacklitLcd, Area::from_square_centimeters(40.0));
        let half = d.power(Ratio::from_percent(50.0));
        let full = d.power(Ratio::ONE);
        assert!((full.as_watts() / half.as_watts() - 2.0).abs() < 1e-12);
        assert_eq!(d.power(Ratio::ZERO), Power::ZERO);
    }

    #[test]
    fn pda_display_dominates_milliwatt_budget() {
        let d = Display::new(PanelKind::BacklitLcd, Area::from_square_centimeters(40.0));
        assert!(d.power(Ratio::ONE).as_milliwatts() > 400.0);
    }

    #[test]
    #[should_panic(expected = "area")]
    fn zero_area_rejected() {
        let _ = Display::new(PanelKind::BacklitLcd, Area::ZERO);
    }
}
