//! Analog RF front-ends as SoC budget components.
//!
//! Unlike digital logic, RF bias power barely scales with technology — the
//! keynote's "RF integration" challenge. A front-end is characterized by
//! its active RX/TX power, sleep floor, and startup (PLL settling) cost,
//! from which duty-cycled average power follows.

use ami_units::{Energy, Power, Ratio, TimeSpan};
use serde::{Deserialize, Serialize};

/// An RF front-end (LNA/mixer/PLL/PA chain) power model.
///
/// # Example
///
/// ```
/// use ami_arch::RfFrontEnd;
/// use ami_units::Ratio;
///
/// let radio = RfFrontEnd::sensor_sub_ghz();
/// let avg = radio.duty_cycled_rx_power(Ratio::from_percent(1.0));
/// // 1% duty cycle turns ~15 mW active into a few hundred µW.
/// assert!(avg.as_microwatts() < 500.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfFrontEnd {
    name: String,
    rx_power: Power,
    tx_power: Power,
    sleep_power: Power,
    startup_time: TimeSpan,
    startup_power: Power,
}

impl RfFrontEnd {
    /// Creates a front-end from explicit state powers.
    ///
    /// # Panics
    ///
    /// Panics if any power is negative or the sleep power exceeds the
    /// active powers.
    pub fn new(
        name: impl Into<String>,
        rx_power: Power,
        tx_power: Power,
        sleep_power: Power,
        startup_time: TimeSpan,
        startup_power: Power,
    ) -> Self {
        for p in [rx_power, tx_power, sleep_power, startup_power] {
            assert!(!p.is_negative(), "powers must be non-negative");
        }
        assert!(
            sleep_power <= rx_power && sleep_power <= tx_power,
            "sleep power must not exceed active powers"
        );
        Self {
            name: name.into(),
            rx_power,
            tx_power,
            sleep_power,
            startup_time,
            startup_power,
        }
    }

    /// A 2003-class sub-GHz short-range sensor radio (PicoRadio/Zigbee
    /// precursor): 15 mW RX, 20 mW TX at 0 dBm, 2 µW sleep, 500 µs startup.
    pub fn sensor_sub_ghz() -> Self {
        Self::new(
            "sub-GHz sensor radio",
            Power::from_milliwatts(15.0),
            Power::from_milliwatts(20.0),
            Power::from_microwatts(2.0),
            TimeSpan::from_micros(500.0),
            Power::from_milliwatts(10.0),
        )
    }

    /// A Bluetooth-class 2.4 GHz personal-area radio: 45 mW RX, 60 mW TX,
    /// 50 µW sleep, 1 ms startup.
    pub fn bluetooth_class() -> Self {
        Self::new(
            "2.4 GHz PAN radio",
            Power::from_milliwatts(45.0),
            Power::from_milliwatts(60.0),
            Power::from_microwatts(50.0),
            TimeSpan::from_millis(1.0),
            Power::from_milliwatts(30.0),
        )
    }

    /// A 5 GHz WLAN front-end (static-node class): 300 mW RX, 600 mW TX.
    pub fn wlan_class() -> Self {
        Self::new(
            "5 GHz WLAN radio",
            Power::from_milliwatts(300.0),
            Power::from_milliwatts(600.0),
            Power::from_milliwatts(1.0),
            TimeSpan::from_millis(2.0),
            Power::from_milliwatts(150.0),
        )
    }

    /// A digital-audio broadcast tuner front-end (CS2): continuous 60 mW RX.
    pub fn dab_tuner() -> Self {
        Self::new(
            "DAB tuner",
            Power::from_milliwatts(60.0),
            Power::from_milliwatts(60.0),
            Power::from_microwatts(100.0),
            TimeSpan::from_millis(5.0),
            Power::from_milliwatts(40.0),
        )
    }

    /// Component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Active receive power.
    pub fn rx_power(&self) -> Power {
        self.rx_power
    }

    /// Active transmit power.
    pub fn tx_power(&self) -> Power {
        self.tx_power
    }

    /// Sleep-state power.
    pub fn sleep_power(&self) -> Power {
        self.sleep_power
    }

    /// PLL/bias settling time before the radio is usable.
    pub fn startup_time(&self) -> TimeSpan {
        self.startup_time
    }

    /// Energy of one wake-up (settling at startup power).
    pub fn startup_energy(&self) -> Energy {
        self.startup_power * self.startup_time
    }

    /// Average power when receiving a fraction `duty` of the time and
    /// sleeping otherwise, ignoring startup costs (valid for duty periods
    /// much longer than the startup time).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn duty_cycled_rx_power(&self, duty: Ratio) -> Power {
        assert!(duty.is_unit_interval(), "duty cycle must lie in [0, 1]");
        self.rx_power * duty.as_fraction() + self.sleep_power * (1.0 - duty.as_fraction())
    }

    /// Average power of a periodic wake-receive-sleep cycle with period
    /// `period` and on-time `on`, including one startup per period.
    ///
    /// # Panics
    ///
    /// Panics if `on + startup` exceeds `period` or either is negative.
    pub fn cycle_average_power(&self, period: TimeSpan, on: TimeSpan) -> Power {
        assert!(
            !on.is_negative() && period > TimeSpan::ZERO,
            "invalid cycle"
        );
        let busy = on + self.startup_time;
        assert!(
            busy <= period,
            "on-time plus startup must fit in the period"
        );
        let e = self.startup_energy() + self.rx_power * on + self.sleep_power * (period - busy);
        e / period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycling_reaches_microwatt_regime() {
        let r = RfFrontEnd::sensor_sub_ghz();
        let p = r.duty_cycled_rx_power(Ratio::from_percent(0.1));
        assert!(p.as_microwatts() < 20.0, "0.1% duty: {p}");
        // But 100% duty is the full RX power.
        assert_eq!(r.duty_cycled_rx_power(Ratio::ONE), r.rx_power());
    }

    #[test]
    fn startup_cost_dominates_short_cycles() {
        let r = RfFrontEnd::sensor_sub_ghz();
        let period = TimeSpan::from_millis(10.0);
        let on = TimeSpan::from_micros(100.0);
        let with_startup = r.cycle_average_power(period, on);
        let pure_duty =
            r.duty_cycled_rx_power(Ratio::from_fraction(on.as_seconds() / period.as_seconds()));
        // Startup adds substantially at this cycle rate.
        assert!(with_startup.as_watts() > 1.5 * pure_duty.as_watts());
    }

    #[test]
    fn class_ordering_sensor_to_wlan() {
        assert!(RfFrontEnd::sensor_sub_ghz().rx_power() < RfFrontEnd::bluetooth_class().rx_power());
        assert!(RfFrontEnd::bluetooth_class().rx_power() < RfFrontEnd::wlan_class().rx_power());
    }

    #[test]
    #[should_panic(expected = "must fit in the period")]
    fn overlong_on_time_rejected() {
        let r = RfFrontEnd::sensor_sub_ghz();
        let _ = r.cycle_average_power(TimeSpan::from_micros(400.0), TimeSpan::from_micros(300.0));
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn bad_duty_rejected() {
        let _ = RfFrontEnd::sensor_sub_ghz().duty_cycled_rx_power(Ratio::from_fraction(1.2));
    }

    #[test]
    fn startup_energy_is_product() {
        let r = RfFrontEnd::sensor_sub_ghz();
        assert!((r.startup_energy().as_microjoules() - 5.0).abs() < 1e-9);
    }
}
