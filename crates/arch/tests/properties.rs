//! Property-based tests for the architecture component models.

use ami_arch::{Adc, ArchitectureClass, Kernel, Memory, MemoryKind, Processor, SocBuilder};
use ami_tech::TechnologyNode;
use ami_units::{ComputeRate, DataVolume, Frequency, Power, Temperature};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = ArchitectureClass> {
    prop_oneof![
        Just(ArchitectureClass::Asic),
        Just(ArchitectureClass::Asip),
        Just(ArchitectureClass::Dsp),
        Just(ArchitectureClass::Fpga),
        Just(ArchitectureClass::Cpu),
    ]
}

fn any_node() -> impl Strategy<Value = TechnologyNode> {
    prop_oneof![
        Just(TechnologyNode::n250()),
        Just(TechnologyNode::n180()),
        Just(TechnologyNode::n130()),
        Just(TechnologyNode::n90()),
        Just(TechnologyNode::n65()),
    ]
}

proptest! {
    /// Power under DVS is monotone in throughput for every class/node.
    #[test]
    fn processor_power_monotone_in_throughput(
        class in any_class(),
        node in any_node(),
        a in 0.001..1.0f64,
        b in 0.001..1.0f64,
    ) {
        let p = Processor::new("p", class, node);
        let peak = p.peak_throughput_nominal().as_ops_per_second();
        let ra = ComputeRate::new(peak * a);
        let rb = ComputeRate::new(peak * b);
        let pa = p.power_for_throughput(ra).expect("within peak");
        let pb = p.power_for_throughput(rb).expect("within peak");
        if a <= b {
            prop_assert!(pa.as_watts() <= pb.as_watts() * (1.0 + 1e-9));
        } else {
            prop_assert!(pb.as_watts() <= pa.as_watts() * (1.0 + 1e-9));
        }
    }

    /// DVS power never exceeds fixed-nominal-voltage power for the same
    /// throughput.
    #[test]
    fn dvs_never_worse_than_nominal(class in any_class(), frac in 0.01..1.0f64) {
        let node = TechnologyNode::n130();
        let p = Processor::new("p", class, node.clone());
        let rate = ComputeRate::new(p.peak_throughput_nominal().as_ops_per_second() * frac);
        let dvs = p.power_for_throughput(rate).expect("within peak");
        let fixed = p.power_at(rate, node.vdd_nominal());
        prop_assert!(dvs.as_watts() <= fixed.as_watts() * (1.0 + 1e-9));
    }

    /// The class efficiency ordering holds at every node and voltage.
    #[test]
    fn efficiency_ordering_universal(node in any_node(), frac in 0.5..1.0f64) {
        let vdd = ami_units::Voltage::new(node.vdd_nominal().as_volts() * frac);
        let effs: Vec<f64> = ArchitectureClass::all()
            .iter()
            .map(|&c| Processor::new("p", c, node.clone()).efficiency(vdd).as_ops_per_joule())
            .collect();
        for pair in effs.windows(2) {
            prop_assert!(pair[0] > pair[1]);
        }
    }

    /// ADC power follows the FoM law exactly: doubling per bit, linear in
    /// rate.
    #[test]
    fn adc_fom_law(enob in 4.0..20.0f64, khz in 0.1..1e5f64) {
        let rate = Frequency::from_kilohertz(khz);
        let a = Adc::state_of_the_art_2003(enob, rate);
        let b = Adc::state_of_the_art_2003(enob + 1.0, rate);
        prop_assert!((b.power().as_watts() / a.power().as_watts() - 2.0).abs() < 1e-9);
        let c = Adc::state_of_the_art_2003(enob, Frequency::from_kilohertz(2.0 * khz));
        prop_assert!((c.power().as_watts() / a.power().as_watts() - 2.0).abs() < 1e-9);
    }

    /// Memory read energy scales with sqrt(capacity) and linearly with
    /// access size.
    #[test]
    fn memory_scaling_laws(kib in 1.0..4096.0f64, bytes in 1.0..256.0f64) {
        let node = TechnologyNode::n130();
        let m = Memory::new(
            MemoryKind::Sram,
            DataVolume::from_bytes(kib * 1024.0),
            node.clone(),
        );
        let m4 = Memory::new(
            MemoryKind::Sram,
            DataVolume::from_bytes(4.0 * kib * 1024.0),
            node,
        );
        let access = DataVolume::from_bytes(bytes);
        let ratio = m4.read_energy(access).as_joules() / m.read_energy(access).as_joules();
        prop_assert!((ratio - 2.0).abs() < 1e-9, "sqrt law violated: {ratio}");
        let double = m.read_energy(DataVolume::from_bytes(2.0 * bytes)).as_joules();
        prop_assert!((double / m.read_energy(access).as_joules() - 2.0).abs() < 1e-9);
    }

    /// SoC totals are permutation-invariant and equal the sum of lines.
    #[test]
    fn soc_total_is_sum(powers in prop::collection::vec(0.0..10.0f64, 1..20)) {
        let mut builder = SocBuilder::new("x");
        let mut expected = 0.0;
        for (idx, &p) in powers.iter().enumerate() {
            builder = builder.component(format!("c{idx}"), Power::from_watts(p));
            expected += p;
        }
        let soc = builder.build();
        prop_assert!((soc.total().as_watts() - expected).abs() < 1e-9 * expected.max(1.0));
        let share_sum: f64 = soc.lines().iter().map(|l| soc.share(l)).sum();
        if expected > 0.0 {
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    /// Kernel demand is linear in item rate.
    #[test]
    fn kernel_linear_in_rate(hz in 1.0..1e8f64) {
        let k = Kernel::audio_decode();
        let a = k.required_rate(Frequency::new(hz));
        let b = k.required_rate(Frequency::new(2.0 * hz));
        prop_assert!((b.as_ops_per_second() / a.as_ops_per_second() - 2.0).abs() < 1e-12);
    }

    /// Static memory power never decreases with temperature (SRAM leaks).
    #[test]
    fn sram_retention_monotone_in_temperature(celsius in 0.0..85.0f64) {
        let node = TechnologyNode::n90();
        let m = Memory::new(MemoryKind::Sram, DataVolume::from_bytes(65536.0), node);
        let cold = m.static_power(Temperature::from_celsius(celsius));
        let hot = m.static_power(Temperature::from_celsius(celsius + 10.0));
        prop_assert!(hot >= cold);
    }
}
