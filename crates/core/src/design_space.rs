//! Design-space exploration for the autonomous node: which (PV area,
//! check interval) pairs close the energy loop?
//!
//! The keynote's µW-node challenge is a two-dimensional trade: harvester
//! aperture (cost, size) against listening latency (the check interval).
//! [`explore_cs1`] evaluates the full grid and returns the feasibility
//! frontier — the smallest cell that sustains each latency target.

use crate::case_studies::cs1::{run_cs1, Cs1Config};
use ami_units::{Area, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// One evaluated design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignCell {
    /// PV area of this point.
    pub pv_area: Area,
    /// MAC check interval of this point.
    pub check_interval: TimeSpan,
    /// Node load at this point.
    pub load: Power,
    /// Mean harvest at this point.
    pub harvest: Power,
    /// Whether the three-day simulation was outage-free.
    pub sustainable: bool,
}

/// Evaluates the full (area × interval) grid against the base config.
///
/// Grid cells are independent three-day simulations, so they run on the
/// parallel runner with the default
/// [`thread_count`](ami_sim::runner::thread_count); results come back
/// in row-major `(area, interval)` order, bit-exact with the serial
/// nested loop (see [`explore_cs1_threads`]).
pub fn explore_cs1(base: &Cs1Config, areas: &[Area], intervals: &[TimeSpan]) -> Vec<DesignCell> {
    explore_cs1_threads(ami_sim::runner::thread_count(), base, areas, intervals)
}

/// [`explore_cs1`] with an explicit worker count (1 = serial loop).
/// Exposed so the determinism tests can pin the thread topology.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn explore_cs1_threads(
    threads: usize,
    base: &Cs1Config,
    areas: &[Area],
    intervals: &[TimeSpan],
) -> Vec<DesignCell> {
    let grid: Vec<(Area, TimeSpan)> = areas
        .iter()
        .flat_map(|&pv_area| intervals.iter().map(move |&interval| (pv_area, interval)))
        .collect();
    ami_sim::runner::par_map_indexed_threads(threads, &grid, |_, &(pv_area, check_interval)| {
        let config = Cs1Config {
            pv_area,
            check_interval,
            ..base.clone()
        };
        let result = run_cs1(&config);
        DesignCell {
            pv_area,
            check_interval,
            load: result.budget.total(),
            harvest: result.sustainability.mean_harvest,
            sustainable: result.sustainability.sustainable,
        }
    })
}

/// The feasibility frontier: for each check interval, the smallest PV
/// area (among those evaluated) that sustains the node, if any.
pub fn cs1_frontier(cells: &[DesignCell]) -> Vec<(TimeSpan, Option<Area>)> {
    let mut intervals: Vec<TimeSpan> = cells.iter().map(|c| c.check_interval).collect();
    intervals.sort_by(|a, b| a.total_cmp(b));
    intervals.dedup_by(|a, b| a == b);
    intervals
        .into_iter()
        .map(|interval| {
            let best = cells
                .iter()
                .filter(|c| c.check_interval == interval && c.sustainable)
                .map(|c| c.pv_area)
                .min_by(|a, b| a.total_cmp(b));
            (interval, best)
        })
        .collect()
}

/// Renders the grid as a text feasibility map (`#` sustainable, `.` not),
/// rows = areas (largest first), columns = intervals (ascending).
pub fn render_map(cells: &[DesignCell]) -> String {
    let mut areas: Vec<Area> = cells.iter().map(|c| c.pv_area).collect();
    areas.sort_by(|a, b| b.total_cmp(a));
    areas.dedup_by(|a, b| a == b);
    let mut intervals: Vec<TimeSpan> = cells.iter().map(|c| c.check_interval).collect();
    intervals.sort_by(|a, b| a.total_cmp(b));
    intervals.dedup_by(|a, b| a == b);

    let mut out = String::from("area \\ check interval (s):");
    for interval in &intervals {
        out.push_str(&format!(" {:>5.2}", interval.as_seconds()));
    }
    out.push('\n');
    for area in &areas {
        out.push_str(&format!(
            "{:>5.1} cm2              ",
            area.as_square_centimeters()
        ));
        for interval in &intervals {
            let cell = cells
                .iter()
                .find(|c| c.pv_area == *area && c.check_interval == *interval)
                .expect("full grid");
            out.push_str(if cell.sustainable { "     #" } else { "     ." });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<DesignCell> {
        let areas: Vec<Area> = [2.0, 8.0, 16.0]
            .iter()
            .map(|&cm2| Area::from_square_centimeters(cm2))
            .collect();
        let intervals: Vec<TimeSpan> = [0.25, 2.0, 8.0]
            .iter()
            .map(|&s| TimeSpan::from_seconds(s))
            .collect();
        explore_cs1(&Cs1Config::default(), &areas, &intervals)
    }

    #[test]
    fn grid_is_complete() {
        assert_eq!(grid().len(), 9);
    }

    #[test]
    fn feasibility_is_monotone_in_both_axes() {
        // If (a, t) is sustainable, so are larger areas and longer checks.
        let cells = grid();
        for c in &cells {
            if c.sustainable {
                for other in &cells {
                    if other.pv_area >= c.pv_area && other.check_interval >= c.check_interval {
                        assert!(
                            other.sustainable,
                            "monotonicity violated: {:?} vs {:?}",
                            c, other
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frontier_tightens_with_patience() {
        let cells = grid();
        let frontier = cs1_frontier(&cells);
        // At 0.25 s checks nothing on the grid closes the loop; at 2 s
        // the 8 cm² default does; at 8 s even less area suffices.
        assert_eq!(frontier.len(), 3);
        assert!(frontier[0].1.is_none() || frontier[0].1.unwrap().as_square_centimeters() > 8.0);
        let at_2s = frontier[1].1.expect("2 s must be feasible");
        assert!(at_2s.as_square_centimeters() <= 8.0);
        if let (Some(a2), Some(a8)) = (frontier[1].1, frontier[2].1) {
            assert!(a8 <= a2);
        }
    }

    #[test]
    fn map_renders_every_cell() {
        let text = render_map(&grid());
        let marks = text.matches('#').count() + text.matches(" .").count();
        assert!(marks >= 9, "map:\n{text}");
        assert!(text.contains("cm2"));
    }
}
