//! CS2 — the personal mW-node: a battery-powered digital-audio receiver.
//!
//! A DAB-class receiver (the archetype in the same DATE 2003 proceedings,
//! session 4E): analog tuner, IF-sampling ADC, DSP running channel and
//! source decoding, audio DAC and amplifier. The IC design challenges are
//! (1) that the *analog* parts — RF bias and converters — dominate the
//! budget and barely scale, and (2) squeezing the DSP with voltage
//! scaling. T2 is the budget; F4 sweeps battery life over DVS policy and
//! technology node.

use ami_arch::{Adc, ArchitectureClass, Dac, Processor, RfFrontEnd, Soc, SocBuilder};
use ami_dvs::{simulate_taskset, DvsPolicy, DvsReport, TaskSet};
use ami_energy::{Battery, BatteryModel, Chemistry};
use ami_tech::TechnologyNode;
use ami_units::{Frequency, Power, TimeSpan};

/// Parameters of the audio receiver.
#[derive(Debug, Clone)]
pub struct Cs2Config {
    /// Process node of the digital baseband.
    pub node: TechnologyNode,
    /// DVS policy on the DSP.
    pub policy: DvsPolicy,
    /// Battery chemistry.
    pub chemistry: Chemistry,
    /// Battery discharge model.
    pub battery_model: BatteryModel,
    /// Audio-amplifier (headphone) power.
    pub amplifier: Power,
    /// Average display power (zero = audio-only device; a backlit panel
    /// turns the receiver into a PDA-class device and redraws the budget).
    pub display: Power,
}

impl Default for Cs2Config {
    /// 130 nm, per-job WCET stretch, two alkaline AAs worth of capacity
    /// (modelled as one cell), 10 mW headphone drive.
    fn default() -> Self {
        Self {
            node: TechnologyNode::n130(),
            policy: DvsPolicy::WorstCaseStretch,
            chemistry: Chemistry::AlkalineAa,
            battery_model: BatteryModel::Peukert,
            amplifier: Power::from_milliwatts(10.0),
            display: Power::ZERO,
        }
    }
}

/// Outcome of the CS2 evaluation.
#[derive(Debug, Clone)]
pub struct Cs2Result {
    /// The component power budget (table T2).
    pub budget: Soc,
    /// The DSP task-set simulation behind the DSP budget line.
    pub dsp: DvsReport,
    /// Battery life under the budget's average power.
    pub battery_life: TimeSpan,
}

/// Runs the CS2 evaluation with a 10-second DSP simulation window.
pub fn run_cs2(config: &Cs2Config) -> Cs2Result {
    // Digital baseband: the personal-audio task set on a DSP.
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, config.node.clone());
    let tasks = TaskSet::personal_audio();
    let report = simulate_taskset(
        &dsp,
        &tasks,
        config.policy,
        TimeSpan::from_seconds(10.0),
        2003,
    );

    // Analog and interface parts.
    let tuner = RfFrontEnd::dab_tuner();
    let if_adc = Adc::state_of_the_art_2003(10.0, Frequency::from_megahertz(8.192));
    let audio_dac = Dac::new(
        16.0,
        Frequency::from_kilohertz(48.0),
        ami_arch::converter::FOM_2003,
    );

    let mut builder = SocBuilder::new("personal audio receiver")
        .component("RF tuner", tuner.rx_power())
        .component("IF ADC", if_adc.power())
        .component("DSP (decode)", report.average_power())
        .component("audio DAC", audio_dac.power())
        .component("audio amplifier", config.amplifier);
    if config.display > Power::ZERO {
        builder = builder.component("display", config.display);
    }
    let budget = builder.build();

    let battery = Battery::new(config.chemistry, config.battery_model);
    let battery_life = battery.lifetime_under(budget.total());

    Cs2Result {
        budget,
        dsp: report,
        battery_life,
    }
}

/// F4's sweep: battery life across technology nodes and DVS policies.
/// Returns `(node name, policy, dsp average power, battery life)` rows.
///
/// Grid cells are independent (each runs its own seeded `run_cs2`), so
/// the sweep fans out across the default worker pool; merging in
/// node-major cell order keeps the rows byte-identical to the serial
/// nested loop at any thread count.
pub fn sweep_battery_life(
    nodes: &[TechnologyNode],
    policies: &[DvsPolicy],
) -> Vec<(String, DvsPolicy, Power, TimeSpan)> {
    sweep_battery_life_threads(ami_sim::thread_count(), nodes, policies)
}

/// [`sweep_battery_life`] with an explicit worker count (1 runs the
/// plain serial loop). Exposed so tests can pin the topology.
pub fn sweep_battery_life_threads(
    threads: usize,
    nodes: &[TechnologyNode],
    policies: &[DvsPolicy],
) -> Vec<(String, DvsPolicy, Power, TimeSpan)> {
    let cells: Vec<(&TechnologyNode, DvsPolicy)> = nodes
        .iter()
        .flat_map(|node| policies.iter().map(move |&policy| (node, policy)))
        .collect();
    ami_sim::par_map_indexed_threads(threads, &cells, |_, &(node, policy)| {
        let result = run_cs2(&Cs2Config {
            node: node.clone(),
            policy,
            ..Cs2Config::default()
        });
        (
            node.name().to_owned(),
            policy,
            result.dsp.average_power(),
            result.battery_life,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_is_a_milliwatt_class_device() {
        let result = run_cs2(&Cs2Config::default());
        let total = result.budget.total();
        assert!(
            total.as_milliwatts() > 10.0 && total.as_watts() < 1.0,
            "mW-class expected, got {total}"
        );
    }

    #[test]
    fn analog_dominates_the_budget() {
        // The CS2 punchline: the tuner's RF bias is the biggest line and
        // does not scale with CMOS.
        let result = run_cs2(&Cs2Config::default());
        assert_eq!(result.budget.dominant().unwrap().name, "RF tuner");
        let digital = result.dsp.average_power();
        let tuner = result.budget.lines()[0].power;
        assert!(tuner.as_watts() > 3.0 * digital.as_watts());
    }

    #[test]
    fn battery_life_is_portable_class() {
        // Tens of hours on an alkaline cell — the 2003 portable-audio norm.
        let result = run_cs2(&Cs2Config::default());
        assert!(
            result.battery_life.as_hours() > 10.0,
            "got {}",
            result.battery_life
        );
        assert!(result.battery_life.as_days() < 30.0);
    }

    #[test]
    fn dvs_extends_battery_life() {
        let base = Cs2Config::default();
        let none = run_cs2(&Cs2Config {
            policy: DvsPolicy::None,
            ..base.clone()
        });
        let dvs = run_cs2(&base);
        assert!(
            dvs.battery_life > none.battery_life,
            "DVS must extend life: {} vs {}",
            dvs.battery_life,
            none.battery_life
        );
        assert_eq!(dvs.dsp.deadline_misses, 0);
    }

    #[test]
    fn newer_node_shrinks_dsp_share() {
        let old = run_cs2(&Cs2Config {
            node: TechnologyNode::n250(),
            ..Cs2Config::default()
        });
        let new = run_cs2(&Cs2Config {
            node: TechnologyNode::n90(),
            ..Cs2Config::default()
        });
        assert!(new.dsp.average_power() < old.dsp.average_power());
        // But total barely moves: the analog floor.
        let ratio = old.budget.total().as_watts() / new.budget.total().as_watts();
        assert!(
            ratio < 2.0,
            "scaling must NOT fix the analog-dominated budget (ratio {ratio:.2})"
        );
    }

    #[test]
    fn a_backlit_display_redraws_the_budget() {
        // Bolting a PDA-class display onto the receiver makes the
        // *interface*, not the RF, the dominant load — and halves the
        // battery life. The keynote's "natural interfaces" cost, measured.
        use ami_arch::display::{Display, PanelKind};
        use ami_units::{Area, Ratio};
        let panel = Display::new(PanelKind::BacklitLcd, Area::from_square_centimeters(40.0));
        let with_display = run_cs2(&Cs2Config {
            display: panel.power(Ratio::from_percent(60.0)),
            ..Cs2Config::default()
        });
        let without = run_cs2(&Cs2Config::default());
        assert_eq!(with_display.budget.dominant().unwrap().name, "display");
        assert!(with_display.battery_life.as_hours() < 0.7 * without.battery_life.as_hours());
    }

    #[test]
    fn sweep_covers_the_grid() {
        let rows = sweep_battery_life(
            &[TechnologyNode::n180(), TechnologyNode::n130()],
            &[DvsPolicy::None, DvsPolicy::WorstCaseStretch],
        );
        assert_eq!(rows.len(), 4);
        // Within a node, DVS rows live longer.
        assert!(rows[1].3 > rows[0].3);
        assert!(rows[3].3 > rows[2].3);
    }
}
