//! CS1 — the autonomous µW-node: an energy-harvesting sensor node.
//!
//! A light/temperature sensor samples at a few hertz, filters locally on a
//! small ASIP, and reports over a duty-cycled sub-GHz radio. The IC design
//! challenge is *closing the energy loop*: average consumption must stay
//! under the scavenged power at the worst acceptable ambient, and the
//! storage element must bridge the dark hours. Experiments F3/A3 sweep
//! the MAC check interval and the storage size through this module.

use ami_arch::{Adc, ArchitectureClass, Kernel, Processor, Soc, SocBuilder};
use ami_energy::{
    simulate_buffered_harvesting_report, EnvironmentProfile, Harvester, Pmu, Storage,
    SustainabilityReport,
};
use ami_radio::{MacAnalysis, MacProtocol, PreambleSamplingMac, RadioPowerStates, TrafficLoad};
use ami_sim::obs::{EnergyCategory, EnergyLedger};
use ami_tech::TechnologyNode;
use ami_units::{Area, Capacitance, Frequency, Power, TimeSpan, Voltage};
use serde::Serialize;

/// Parameters of the sensor node.
#[derive(Debug, Clone, Serialize)]
pub struct Cs1Config {
    /// Photovoltaic cell area.
    pub pv_area: Area,
    /// Storage capacitor value.
    pub storage_capacitance: Capacitance,
    /// Storage maximum voltage.
    pub storage_voltage: Voltage,
    /// MAC channel-check interval (the duty-cycle knob).
    pub check_interval: TimeSpan,
    /// Sensor report interval.
    pub report_interval: TimeSpan,
    /// Sensor sampling rate.
    pub sample_rate: Frequency,
    /// Process node of the digital part.
    pub node: TechnologyNode,
    /// Ambient profile driving the harvester.
    pub profile: EnvironmentProfile,
}

impl Default for Cs1Config {
    /// 8 cm² PV, 1 F @ 2.5 V (the night bridge), 2 s checks, 5-minute
    /// reports, 10 Hz sampling, office day — and the **180 nm** node:
    /// 2003 µW designs deliberately stayed off the leaky leading edge,
    /// exactly as ablation A1 predicts.
    fn default() -> Self {
        Self {
            pv_area: Area::from_square_centimeters(8.0),
            storage_capacitance: Capacitance::from_farads(1.0),
            storage_voltage: Voltage::from_volts(2.5),
            check_interval: TimeSpan::from_seconds(2.0),
            report_interval: TimeSpan::from_minutes(5.0),
            sample_rate: Frequency::from_hertz(10.0),
            node: TechnologyNode::n180(),
            profile: EnvironmentProfile::office_day(),
        }
    }
}

/// Outcome of the CS1 evaluation.
#[derive(Debug, Clone)]
pub struct Cs1Result {
    /// The component power budget.
    pub budget: Soc,
    /// The MAC analysis behind the radio line of the budget.
    pub mac: MacAnalysis,
    /// Day-scale harvest-versus-load simulation result.
    pub sustainability: SustainabilityReport,
}

/// Builds the node's power budget from the toolkit models.
///
/// The uplink exploits the class asymmetry of the keynote: the sink is a
/// mains-powered W-node that listens continuously, so the sensor pays *no
/// wake-up preamble* on transmit — only its own periodic channel checks
/// (for downlink commands) and the bare packet airtime.
pub fn cs1_budget(config: &Cs1Config) -> (Soc, MacAnalysis) {
    // Channel-check (downlink listening) cost from the LPL analysis.
    let mac = PreambleSamplingMac::new(config.check_interval);
    let radio_states = RadioPowerStates::sensor_default();
    let analysis = mac.analyze(&radio_states, &TrafficLoad::idle());
    // Preamble-free uplink: one bare packet per report interval.
    let traffic = TrafficLoad::periodic_report(config.report_interval);
    let tx_avg = Power::new(
        (radio_states.tx * traffic.airtime()).as_joules() / config.report_interval.as_seconds(),
    );

    // Local processing: filtering on a small ASIP with ideal DVS.
    let asip = Processor::new("asip", ArchitectureClass::Asip, config.node.clone());
    let rate = Kernel::sensor_filter().required_rate(config.sample_rate);
    let mcu_power = asip
        .power_for_throughput(rate)
        .expect("sensor filtering is far below peak");

    // Interface electronics: a 12-bit ADC at the sample rate plus 1 µW of
    // sensor bias.
    let adc = Adc::state_of_the_art_2003(12.0, config.sample_rate);
    let sensor_bias = Power::from_microwatts(1.0);

    let budget = SocBuilder::new("autonomous sensor node")
        .component("radio checks (LPL)", analysis.average_power)
        .component("radio uplink tx", tx_avg)
        .component("asip + leakage", mcu_power)
        .component("adc", adc.power())
        .component("sensor bias", sensor_bias)
        .build();
    (budget, analysis)
}

/// Runs the full CS1 evaluation: budget plus a three-day harvest
/// simulation with five-minute steps.
pub fn run_cs1(config: &Cs1Config) -> Cs1Result {
    let (budget, mac) = cs1_budget(config);
    let harvester = Harvester::photovoltaic(config.pv_area);
    let pmu = Pmu::micro_power();
    let mut storage = Storage::supercapacitor(config.storage_capacitance, config.storage_voltage);
    // Report-only variant: the sweeps over this function never read the
    // buffer trace, and the report is bit-identical with the retaining
    // path (same loop, same float order).
    let sustainability = simulate_buffered_harvesting_report(
        &harvester,
        &pmu,
        &mut storage,
        budget.total(),
        &config.profile,
        TimeSpan::from_days(3.0),
        TimeSpan::from_minutes(5.0),
    );
    Cs1Result {
        budget,
        mac,
        sustainability,
    }
}

/// Renders the CS1 power budget as a single-node energy ledger over
/// `span`, attributing each budget line to an observability category:
/// the periodic channel checks are idle listening
/// ([`EnergyCategory::Idle`] — the duty-cycled radio's dominant cost),
/// the uplink is [`EnergyCategory::Tx`], and the sensing path (ASIP,
/// ADC, sensor bias) is [`EnergyCategory::Sensing`].
///
/// The ledger reproduces the keynote's headline split — the radio's
/// channel checks take ~82 % of the default node's budget — as an
/// energy-attribution statement rather than a power table.
pub fn cs1_energy_ledger(config: &Cs1Config, span: TimeSpan) -> EnergyLedger {
    let (budget, _) = cs1_budget(config);
    let mut ledger = EnergyLedger::with_nodes(1);
    for line in budget.lines() {
        let category = match line.name.as_str() {
            "radio checks (LPL)" => EnergyCategory::Idle,
            "radio uplink tx" => EnergyCategory::Tx,
            _ => EnergyCategory::Sensing,
        };
        ledger.charge(0, category, (line.power * span).as_joules());
    }
    ledger
}

/// F3's sweep: evaluates sustainability across MAC check intervals.
/// Returns `(interval, average load, mean harvest, sustainable)` rows.
///
/// Each interval is an independent three-day simulation; the rows are
/// evaluated on the parallel runner and returned in input order.
pub fn sweep_check_interval(
    base: &Cs1Config,
    intervals: &[TimeSpan],
) -> Vec<(TimeSpan, Power, Power, bool)> {
    ami_sim::runner::par_map_indexed(intervals, |_, &interval| {
        let config = Cs1Config {
            check_interval: interval,
            ..base.clone()
        };
        let result = run_cs1(&config);
        (
            interval,
            result.budget.total(),
            result.sustainability.mean_harvest,
            result.sustainability.sustainable,
        )
    })
}

/// A3's sweep: evaluates outage across storage sizes.
/// Returns `(capacitance, outage fraction)` rows, evaluated on the
/// parallel runner in input order.
pub fn sweep_storage(base: &Cs1Config, caps: &[Capacitance]) -> Vec<(Capacitance, f64)> {
    ami_sim::runner::par_map_indexed(caps, |_, &c| {
        let config = Cs1Config {
            storage_capacitance: c,
            ..base.clone()
        };
        let result = run_cs1(&config);
        (c, result.sustainability.outage_fraction)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_is_a_sustainable_microwatt_device() {
        let result = run_cs1(&Cs1Config::default());
        let total = result.budget.total();
        assert!(
            total.as_microwatts() < 1000.0,
            "must be a µW-class node, got {total}"
        );
        assert!(
            result.sustainability.sustainable,
            "{:?}",
            result.sustainability
        );
        assert!(result.sustainability.margin() > Power::ZERO);
    }

    #[test]
    fn radio_dominates_the_budget() {
        // The keynote challenge: communication, not computation, sets the
        // µW budget.
        let (budget, _) = cs1_budget(&Cs1Config::default());
        assert!(budget.dominant().unwrap().name.contains("radio"));
    }

    #[test]
    fn ledger_reproduces_the_radio_dominance_split() {
        // The keynote's headline: idle listening (channel checks) takes
        // ~82 % of the default node's budget. The ledger must reproduce
        // that from energy attribution alone.
        let config = Cs1Config::default();
        let span = TimeSpan::from_days(3.0);
        let ledger = cs1_energy_ledger(&config, span);
        let idle = ledger.fraction(EnergyCategory::Idle);
        assert!((0.80..0.85).contains(&idle), "idle fraction {idle:.4}");
        assert_eq!(ledger.fraction(EnergyCategory::RxRelay), 0.0);

        // Categories partition the budget total exactly (within float
        // accumulation): Σ category energy == total power × span.
        let (budget, _) = cs1_budget(&config);
        let expected = (budget.total() * span).as_joules();
        let total = ledger.total().as_joules();
        assert!(
            (total - expected).abs() <= 1e-9 * expected,
            "ledger {total} vs budget {expected}"
        );
    }

    #[test]
    fn aggressive_checking_breaks_the_energy_loop() {
        let rows = sweep_check_interval(
            &Cs1Config::default(),
            &[
                TimeSpan::from_millis(20.0),
                TimeSpan::from_millis(100.0),
                TimeSpan::from_seconds(1.0),
                TimeSpan::from_seconds(4.0),
            ],
        );
        // Load falls monotonically with the check interval.
        for pair in rows.windows(2) {
            assert!(pair[1].1 <= pair[0].1 * 1.0001);
        }
        // The fastest checking must not be sustainable; the slowest must be.
        assert!(!rows[0].3, "20 ms checks should exceed the harvest");
        assert!(rows[3].3, "4 s checks must be sustainable");
    }

    #[test]
    fn undersized_storage_causes_outage_despite_margin() {
        let rows = sweep_storage(
            &Cs1Config::default(),
            &[
                Capacitance::from_millifarads(5.0),
                Capacitance::from_millifarads(1000.0),
            ],
        );
        assert!(rows[0].1 > 0.0, "5 mF cannot bridge the night");
        assert_eq!(rows[1].1, 0.0, "1 F bridges the night easily");
    }

    #[test]
    fn dark_profile_is_never_sustainable() {
        let config = Cs1Config {
            profile: EnvironmentProfile::constant(ami_energy::EnvironmentSample::dark()),
            ..Cs1Config::default()
        };
        let result = run_cs1(&config);
        assert!(!result.sustainability.sustainable);
    }

    #[test]
    fn bigger_cell_buys_margin() {
        let small = run_cs1(&Cs1Config::default());
        let big = run_cs1(&Cs1Config {
            pv_area: Area::from_square_centimeters(16.0),
            ..Cs1Config::default()
        });
        assert!(big.sustainability.margin() > small.sustainability.margin());
    }
}
