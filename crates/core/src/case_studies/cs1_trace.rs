//! Event-driven cross-validation of the CS1 budget.
//!
//! The CS1 power budget (`cs1_budget`) comes from *analytic* MAC and
//! component models. This module re-derives the same number a completely
//! different way: an event-driven simulation on the `ami-sim` kernel that
//! walks the node through its actual power states (sleep, channel check,
//! report transmission) over a full day and integrates energy with an
//! [`EnergyMeter`]. Agreement between the two is a reproduction-quality
//! check the test suite enforces.
//!
//! The simulation is split into explicit phases — [`DaySimulation::new`]
//! (build the schedule, intern the power states), [`DaySimulation::run`]
//! (the event loop) and [`DaySimulation::finish`] (summarize) — so the
//! steady-state loop can be measured in isolation:
//! `crates/core/tests/zero_alloc.rs` proves `run` performs no heap
//! allocation at all. The hot path works entirely in pre-interned
//! [`StateId`]s; no event touches a string.

use crate::case_studies::cs1::{cs1_budget, Cs1Config};
use ami_radio::{Packet, RadioPowerStates};
use ami_sim::{EnergyMeter, EventQueue, StateId};
use ami_units::{DataRate, Energy, Power, TimeSpan};

/// One day of node operation, summarized by power state.
#[derive(Debug, Clone)]
pub struct DayTrace {
    /// Per-state energy breakdown over the day.
    pub breakdown: Vec<(String, Energy)>,
    /// Average power over the day.
    pub average_power: Power,
    /// Number of state transitions executed.
    pub transitions: u64,
    /// Reports transmitted.
    pub reports_sent: u64,
    /// Channel checks performed.
    pub checks_done: u64,
}

/// The dynamic end-of-activity events; the periodic starts never enter
/// the queue (see [`DaySimulation::run`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeEvent {
    CheckEnd,
    ReportEnd,
}

/// The CS1 day simulation with its phases exposed: build with
/// [`DaySimulation::new`], drive the event loop with
/// [`DaySimulation::run`], then summarize with
/// [`DaySimulation::finish`]. [`trace_one_day`] is the one-call
/// convenience wrapper.
#[derive(Debug)]
pub struct DaySimulation {
    /// Dynamic end-of-activity events only; never more than two pending.
    queue: EventQueue<NodeEvent>,
    meter: EnergyMeter,
    day: TimeSpan,
    sample_time: TimeSpan,
    airtime: TimeSpan,
    check_interval: TimeSpan,
    report_interval: TimeSpan,
    next_check: TimeSpan,
    next_report: TimeSpan,
    baseline_power: Power,
    check_power: Power,
    tx_power: Power,
    startup_energy: Energy,
    // Pre-interned state ids: the event loop never looks up a string.
    baseline: StateId,
    startup: StateId,
    check: StateId,
    tx: StateId,
    checks: u64,
    reports: u64,
}

impl DaySimulation {
    /// Builds the day's schedule and meter for `config`.
    ///
    /// The baseline (sleep) state carries the always-on loads — ASIP,
    /// ADC, sensor bias, radio sleep floor — taken from the analytic
    /// budget; the radio's check and transmit states are driven by the
    /// event queue with their startup energies charged explicitly.
    pub fn new(config: &Cs1Config) -> Self {
        let radio = RadioPowerStates::sensor_default();
        let (budget, _) = cs1_budget(config);
        // Baseline = everything except the two radio lines.
        let baseline_power: Power = budget
            .lines()
            .iter()
            .filter(|l| !l.name.starts_with("radio"))
            .map(|l| l.power)
            .sum::<Power>()
            + radio.sleep;

        let sample_time = TimeSpan::from_micros(500.0);
        let airtime = Packet::sensor_report().airtime(DataRate::from_kilobits_per_second(50.0));
        let day = TimeSpan::from_days(1.0);

        // The two periodic start streams are generated lazily in `run`
        // instead of being materialized into the heap: ~87 000 events
        // would otherwise sift through a full-day heap, and the merge
        // order is statically known. Only the dynamic end-of-activity
        // events flow through the queue, which therefore never holds
        // more than two entries; capacity 4 keeps `run` allocation-free.
        let queue: EventQueue<NodeEvent> = EventQueue::with_capacity(4);

        let mut meter = EnergyMeter::new("baseline", baseline_power, TimeSpan::ZERO);
        let baseline = meter.intern("baseline");
        let startup = meter.intern("radio startup");
        let check = meter.intern("radio check");
        let tx = meter.intern("radio tx");
        Self {
            queue,
            meter,
            day,
            sample_time,
            airtime,
            check_interval: config.check_interval,
            report_interval: config.report_interval,
            next_check: config.check_interval,
            next_report: config.report_interval,
            baseline_power,
            check_power: baseline_power + radio.rx,
            tx_power: baseline_power + radio.tx,
            startup_energy: radio.startup_energy(),
            baseline,
            startup,
            check,
            tx,
            checks: 0,
            reports: 0,
        }
    }

    /// Drives the event loop to the end of the day. This is the
    /// steady-state hot path: event pop → state transition → meter
    /// update, with zero heap allocation.
    ///
    /// The pop order reproduces the retired materialize-everything heap
    /// exactly. There, every periodic start was scheduled in `new` (all
    /// checks first, then all reports) and every end-of-activity event
    /// in `run`, so the `(time, seq)` tie-break resolved coincident
    /// instants as check ≺ report ≺ end. The lazy merge below encodes
    /// that order statically: earliest time wins, and on ties the
    /// periodic streams outrank the queue, checks outrank reports.
    pub fn run(&mut self) {
        loop {
            // Candidate sources: (time, rank) with the tie ranking above.
            // Starts exist at t < day; queued ends pop while t ≤ day —
            // the inclusive deadline `pop_until` applied.
            let mut best: Option<(TimeSpan, u8)> = None;
            if self.next_check < self.day {
                best = Some((self.next_check, 0));
            }
            if self.next_report < self.day {
                let cand = (self.next_report, 1);
                best = match best {
                    Some(b) if b.0 <= cand.0 => Some(b),
                    _ => Some(cand),
                };
            }
            if let Some(td) = self.queue.peek_time().filter(|&t| t <= self.day) {
                let cand = (td, 2);
                best = match best {
                    Some(b) if b.0 <= cand.0 => Some(b),
                    _ => Some(cand),
                };
            }
            let Some((now, rank)) = best else {
                break;
            };
            match rank {
                0 => {
                    self.next_check += self.check_interval;
                    self.meter.charge_id(self.startup, self.startup_energy);
                    self.meter.transition_id(self.check, self.check_power, now);
                    self.queue
                        .schedule_at(now + self.sample_time, NodeEvent::CheckEnd);
                }
                1 => {
                    self.next_report += self.report_interval;
                    self.meter.charge_id(self.startup, self.startup_energy);
                    self.meter.transition_id(self.tx, self.tx_power, now);
                    self.queue
                        .schedule_at(now + self.airtime, NodeEvent::ReportEnd);
                }
                _ => {
                    let (t, event) = self.queue.pop().expect("peeked above");
                    self.meter
                        .transition_id(self.baseline, self.baseline_power, t);
                    match event {
                        NodeEvent::CheckEnd => self.checks += 1,
                        NodeEvent::ReportEnd => self.reports += 1,
                    }
                }
            }
        }
    }

    /// Summarizes the completed day.
    pub fn finish(self) -> DayTrace {
        let total = self.meter.total_energy(self.day);
        DayTrace {
            breakdown: self.meter.breakdown(),
            average_power: total / self.day,
            transitions: self.meter.transitions(),
            reports_sent: self.reports,
            checks_done: self.checks,
        }
    }
}

/// Simulates one day of the CS1 node event-by-event.
pub fn trace_one_day(config: &Cs1Config) -> DayTrace {
    let mut sim = DaySimulation::new(config);
    sim.run();
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_driven_average_matches_analytic_budget() {
        // The headline cross-validation: two independent derivations of
        // the node's average power agree within 15%. (They differ in
        // check/tx overlap handling and boundary effects.)
        let config = Cs1Config::default();
        let trace = trace_one_day(&config);
        let (budget, _) = cs1_budget(&config);
        let analytic = budget.total().as_microwatts();
        let simulated = trace.average_power.as_microwatts();
        let error = (simulated - analytic).abs() / analytic;
        assert!(
            error < 0.15,
            "analytic {analytic:.2} µW vs event-driven {simulated:.2} µW ({:.1}% apart)",
            100.0 * error
        );
    }

    #[test]
    fn event_counts_match_the_schedule() {
        let config = Cs1Config::default();
        let trace = trace_one_day(&config);
        // A day of 2 s checks and 5 min reports.
        assert_eq!(trace.checks_done, (86_400 / 2) - 1);
        assert_eq!(trace.reports_sent, (86_400 / 300) - 1);
        // Every check and report is two transitions.
        assert_eq!(
            trace.transitions,
            2 * (trace.checks_done + trace.reports_sent)
        );
    }

    #[test]
    fn breakdown_is_dominated_by_radio_states_over_sleep_power() {
        let trace = trace_one_day(&Cs1Config::default());
        let energy_of = |name: &str| {
            trace
                .breakdown
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.as_joules())
                .unwrap_or(0.0)
        };
        // Radio listening (checks) plus startup dominates baseline*:
        // the µW-node's energy goes into its ears.
        let radio_total =
            energy_of("radio check") + energy_of("radio startup") + energy_of("radio tx");
        assert!(radio_total > 0.0);
        assert!(energy_of("baseline") > 0.0);
    }

    #[test]
    fn faster_checking_shows_up_in_the_trace() {
        let slow = trace_one_day(&Cs1Config::default());
        let fast = trace_one_day(&Cs1Config {
            check_interval: TimeSpan::from_millis(500.0),
            ..Cs1Config::default()
        });
        assert!(fast.average_power > slow.average_power);
        assert!(fast.checks_done > 3 * slow.checks_done);
    }
}
