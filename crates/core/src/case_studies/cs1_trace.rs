//! Event-driven cross-validation of the CS1 budget.
//!
//! The CS1 power budget (`cs1_budget`) comes from *analytic* MAC and
//! component models. This module re-derives the same number a completely
//! different way: an event-driven simulation on the `ami-sim` kernel that
//! walks the node through its actual power states (sleep, channel check,
//! report transmission) over a full day and integrates energy with an
//! [`EnergyMeter`]. Agreement between the two is a reproduction-quality
//! check the test suite enforces.

use crate::case_studies::cs1::{cs1_budget, Cs1Config};
use ami_radio::{Packet, RadioPowerStates};
use ami_sim::{EnergyMeter, EventQueue};
use ami_units::{DataRate, Energy, Power, TimeSpan};

/// One day of node operation, summarized by power state.
#[derive(Debug, Clone)]
pub struct DayTrace {
    /// Per-state energy breakdown over the day.
    pub breakdown: Vec<(String, Energy)>,
    /// Average power over the day.
    pub average_power: Power,
    /// Number of state transitions executed.
    pub transitions: u64,
    /// Reports transmitted.
    pub reports_sent: u64,
    /// Channel checks performed.
    pub checks_done: u64,
}

/// The node's radio schedule events.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeEvent {
    CheckStart,
    CheckEnd,
    ReportStart,
    ReportEnd,
}

/// Simulates one day of the CS1 node event-by-event.
///
/// The baseline (sleep) state carries the always-on loads — ASIP,
/// ADC, sensor bias, radio sleep floor — taken from the analytic budget;
/// the radio's check and transmit states are driven by the event queue
/// with their startup energies charged explicitly.
pub fn trace_one_day(config: &Cs1Config) -> DayTrace {
    let radio = RadioPowerStates::sensor_default();
    let (budget, _) = cs1_budget(config);
    // Baseline = everything except the two radio lines.
    let baseline: Power = budget
        .lines()
        .iter()
        .filter(|l| !l.name.starts_with("radio"))
        .map(|l| l.power)
        .sum::<Power>()
        + radio.sleep;

    let sample_time = TimeSpan::from_micros(500.0);
    let airtime = Packet::sensor_report().airtime(DataRate::from_kilobits_per_second(50.0));
    let day = TimeSpan::from_days(1.0);

    let mut queue: EventQueue<NodeEvent> = EventQueue::new();
    // Interleave the two periodic processes.
    let mut t = config.check_interval;
    while t < day {
        queue.schedule_at(t, NodeEvent::CheckStart);
        t += config.check_interval;
    }
    let mut t = config.report_interval;
    while t < day {
        queue.schedule_at(t, NodeEvent::ReportStart);
        t += config.report_interval;
    }

    let mut meter = EnergyMeter::new("baseline", baseline, TimeSpan::ZERO);
    let mut checks = 0u64;
    let mut reports = 0u64;
    while let Some((now, event)) = queue.pop_until(day) {
        match event {
            NodeEvent::CheckStart => {
                meter.charge("radio startup", radio.startup_energy());
                meter.transition("radio check", baseline + radio.rx, now);
                queue.schedule_at(now + sample_time, NodeEvent::CheckEnd);
            }
            NodeEvent::CheckEnd => {
                meter.transition("baseline", baseline, now);
                checks += 1;
            }
            NodeEvent::ReportStart => {
                meter.charge("radio startup", radio.startup_energy());
                meter.transition("radio tx", baseline + radio.tx, now);
                queue.schedule_at(now + airtime, NodeEvent::ReportEnd);
            }
            NodeEvent::ReportEnd => {
                meter.transition("baseline", baseline, now);
                reports += 1;
            }
        }
    }

    let total = meter.total_energy(day);
    DayTrace {
        breakdown: meter.breakdown(),
        average_power: total / day,
        transitions: meter.transitions(),
        reports_sent: reports,
        checks_done: checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_driven_average_matches_analytic_budget() {
        // The headline cross-validation: two independent derivations of
        // the node's average power agree within 15%. (They differ in
        // check/tx overlap handling and boundary effects.)
        let config = Cs1Config::default();
        let trace = trace_one_day(&config);
        let (budget, _) = cs1_budget(&config);
        let analytic = budget.total().as_microwatts();
        let simulated = trace.average_power.as_microwatts();
        let error = (simulated - analytic).abs() / analytic;
        assert!(
            error < 0.15,
            "analytic {analytic:.2} µW vs event-driven {simulated:.2} µW ({:.1}% apart)",
            100.0 * error
        );
    }

    #[test]
    fn event_counts_match_the_schedule() {
        let config = Cs1Config::default();
        let trace = trace_one_day(&config);
        // A day of 2 s checks and 5 min reports.
        assert_eq!(trace.checks_done, (86_400 / 2) - 1);
        assert_eq!(trace.reports_sent, (86_400 / 300) - 1);
        // Every check and report is two transitions.
        assert_eq!(
            trace.transitions,
            2 * (trace.checks_done + trace.reports_sent)
        );
    }

    #[test]
    fn breakdown_is_dominated_by_radio_states_over_sleep_power() {
        let trace = trace_one_day(&Cs1Config::default());
        let energy_of = |name: &str| {
            trace
                .breakdown
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e.as_joules())
                .unwrap_or(0.0)
        };
        // Radio listening (checks) plus startup dominates baseline*:
        // the µW-node's energy goes into its ears.
        let radio_total =
            energy_of("radio check") + energy_of("radio startup") + energy_of("radio tx");
        assert!(radio_total > 0.0);
        assert!(energy_of("baseline") > 0.0);
    }

    #[test]
    fn faster_checking_shows_up_in_the_trace() {
        let slow = trace_one_day(&Cs1Config::default());
        let fast = trace_one_day(&Cs1Config {
            check_interval: TimeSpan::from_millis(500.0),
            ..Cs1Config::default()
        });
        assert!(fast.average_power > slow.average_power);
        assert!(fast.checks_done > 3 * slow.checks_done);
    }
}
