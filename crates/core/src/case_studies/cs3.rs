//! CS3 — the static W-node: a mains-powered ambient media hub.
//!
//! The hub decodes video for an ambient display and serves the room's
//! wireless network. Mains power does not mean unlimited power: the
//! thermal ceiling of a consumer box is a few watts for silicon. The IC
//! design challenge is the **flexibility–efficiency gap**: which
//! architecture class can sustain which video format inside the ceiling.
//! F5 is generated from [`flexibility_table`].

use ami_arch::kernel::VideoFormat;
use ami_arch::{ArchitectureClass, Kernel, Memory, MemoryKind, Processor};
use ami_tech::TechnologyNode;
use ami_units::{DataVolume, Energy, Power};
use serde::{Deserialize, Serialize};

/// Parameters of the media hub.
#[derive(Debug, Clone)]
pub struct Cs3Config {
    /// Process node.
    pub node: TechnologyNode,
    /// Frame rate.
    pub fps: f64,
    /// Silicon thermal ceiling.
    pub ceiling: Power,
}

impl Default for Cs3Config {
    /// 130 nm, 25 fps, a 2 W silicon budget inside a fanless box.
    fn default() -> Self {
        Self {
            node: TechnologyNode::n130(),
            fps: 25.0,
            ceiling: Power::from_watts(2.0),
        }
    }
}

/// One row of the F5 flexibility table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cs3Row {
    /// Architecture class evaluated.
    pub class: String,
    /// Video format evaluated.
    pub format: String,
    /// Whether the class can reach the required throughput at all.
    pub feasible: bool,
    /// Total power (compute + frame memory traffic) when feasible.
    pub power: Option<Power>,
    /// Whether the power fits the thermal ceiling.
    pub within_ceiling: bool,
}

/// Memory traffic charged per decoded pixel: four reference reads and one
/// write of 16-bit samples against external DRAM.
fn memory_energy_per_pixel(node: &TechnologyNode) -> Energy {
    let dram = Memory::new(
        MemoryKind::Dram,
        DataVolume::from_bytes(8.0 * 1024.0 * 1024.0),
        node.clone(),
    );
    let sample = DataVolume::from_bytes(2.0);
    dram.read_energy(sample) * 4.0 + dram.write_energy(sample)
}

/// Evaluates every architecture class against every video format (F5).
///
/// The (class × format) cross product runs on the parallel runner;
/// rows come back in the same row-major (class outer, format inner)
/// order as the original nested loop.
pub fn flexibility_table(config: &Cs3Config) -> Vec<Cs3Row> {
    let kernel = Kernel::video_decode();
    let mem_per_pixel = memory_energy_per_pixel(&config.node);
    let grid: Vec<(ArchitectureClass, VideoFormat)> = ArchitectureClass::all()
        .into_iter()
        .flat_map(|class| VideoFormat::all().into_iter().map(move |f| (class, f)))
        .collect();
    ami_sim::runner::par_map_indexed(&grid, |_, &(class, format)| {
        let engine = Processor::new("video", class, config.node.clone());
        let rate = kernel.required_rate_video(format, config.fps);
        let pixel_rate = format.pixels() * config.fps;
        let mem_power = Power::new(mem_per_pixel.as_joules() * pixel_rate);
        let compute = engine.power_for_throughput(rate);
        let (feasible, power, within) = match compute {
            Some(p) => {
                let total = p + mem_power;
                (true, Some(total), total <= config.ceiling)
            }
            None => (false, None, false),
        };
        Cs3Row {
            class: class.to_string(),
            format: format.to_string(),
            feasible,
            power,
            within_ceiling: within,
        }
    })
}

/// The highest format a class sustains within the ceiling, if any.
pub fn best_format(config: &Cs3Config, class: ArchitectureClass) -> Option<VideoFormat> {
    let kernel = Kernel::video_decode();
    let mem_per_pixel = memory_energy_per_pixel(&config.node);
    let engine = Processor::new("video", class, config.node.clone());
    VideoFormat::all().into_iter().rev().find(|&format| {
        let rate = kernel.required_rate_video(format, config.fps);
        let mem = Power::new(mem_per_pixel.as_joules() * format.pixels() * config.fps);
        engine
            .power_for_throughput(rate)
            .is_some_and(|p| p + mem <= config.ceiling)
    })
}

/// Renders the F5 table as aligned text.
pub fn flexibility_table_text(config: &Cs3Config) -> String {
    let mut out = format!(
        "{:<6}  {:<6}  {:>9}  {:>12}  ceiling({})\n",
        "arch", "format", "feasible", "power", config.ceiling
    );
    for row in flexibility_table(config) {
        out.push_str(&format!(
            "{:<6}  {:<6}  {:>9}  {:>12}  {}\n",
            row.class,
            row.format,
            if row.feasible { "yes" } else { "no" },
            row.power.map_or("-".to_owned(), |p| p.to_string()),
            if row.within_ceiling { "ok" } else { "OVER" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asic_sustains_sd_within_ceiling() {
        let best = best_format(&Cs3Config::default(), ArchitectureClass::Asic);
        assert_eq!(best, Some(VideoFormat::Sd));
    }

    #[test]
    fn cpu_cannot_sustain_sd_within_ceiling() {
        let config = Cs3Config::default();
        let rows = flexibility_table(&config);
        let cpu_sd = rows
            .iter()
            .find(|r| r.class == "CPU" && r.format == "SD")
            .unwrap();
        assert!(!cpu_sd.within_ceiling, "{cpu_sd:?}");
    }

    #[test]
    fn dsp_crosses_over_between_qcif_and_sd() {
        // The F5 shape: the DSP handles the small formats in budget but
        // not the large one — "who wins is rate-dependent".
        let config = Cs3Config::default();
        let best = best_format(&config, ArchitectureClass::Dsp);
        assert!(
            best == Some(VideoFormat::Qcif) || best == Some(VideoFormat::Cif),
            "DSP should top out below SD, got {best:?}"
        );
    }

    #[test]
    fn efficiency_ordering_holds_at_fixed_format() {
        let rows = flexibility_table(&Cs3Config::default());
        let power_of = |class: &str| {
            rows.iter()
                .find(|r| r.class == class && r.format == "CIF")
                .and_then(|r| r.power)
        };
        let asic = power_of("ASIC").expect("ASIC feasible at CIF");
        if let Some(cpu) = power_of("CPU") {
            // Memory traffic (common to both) compresses the total-power
            // ratio; 4x on totals still reflects a >100x compute gap.
            assert!(cpu.as_watts() > 4.0 * asic.as_watts());
        }
        if let Some(dsp) = power_of("DSP") {
            assert!(dsp > asic);
        }
    }

    #[test]
    fn memory_traffic_is_not_negligible() {
        let node = TechnologyNode::n130();
        let per_pixel = memory_energy_per_pixel(&node);
        // nJ-class per pixel: ~29 mW at SD rates — a real budget line.
        assert!(per_pixel.as_nanojoules() > 0.5);
        let sd_power = per_pixel.as_joules() * VideoFormat::Sd.pixels() * 25.0;
        assert!(sd_power > 0.01, "SD memory traffic {sd_power} W");
    }

    #[test]
    fn table_covers_the_full_grid() {
        let rows = flexibility_table(&Cs3Config::default());
        assert_eq!(rows.len(), 5 * 3);
        let text = flexibility_table_text(&Cs3Config::default());
        for class in ["ASIC", "ASIP", "DSP", "FPGA", "CPU"] {
            assert!(text.contains(class));
        }
    }

    #[test]
    fn scaling_relaxes_the_gap() {
        // At 65 nm the FPGA reaches formats it could not at 250 nm.
        let old = best_format(
            &Cs3Config {
                node: TechnologyNode::n250(),
                ..Cs3Config::default()
            },
            ArchitectureClass::Fpga,
        );
        let new = best_format(
            &Cs3Config {
                node: TechnologyNode::n65(),
                ..Cs3Config::default()
            },
            ArchitectureClass::Fpga,
        );
        match (old, new) {
            (None, Some(_)) => {}
            (Some(o), Some(n)) => assert!(n >= o),
            other => panic!("scaling regressed the FPGA: {other:?}"),
        }
    }
}
