//! The keynote's three case studies, one per device class.
//!
//! The abstract announces "three case studies \[that\] highlight the IC
//! design challenges involved" without naming them; DESIGN.md documents
//! the reconstruction. Each module is a parameterized, deterministic
//! experiment returning structured results:
//!
//! * [`cs1`] — **autonomous µW-node**: an energy-harvesting sensor node.
//!   Challenge: closing the scavenged-power loop (duty cycling, MAC
//!   choice, storage sizing).
//! * [`cs2`] — **personal mW-node**: a battery-powered digital-audio
//!   receiver. Challenge: the component power budget (RF bias dominates)
//!   and DVS on the DSP.
//! * [`cs3`] — **static W-node**: a mains media hub. Challenge: the
//!   flexibility–efficiency gap at video rates under a thermal ceiling.

pub mod cs1;
pub mod cs1_trace;
pub mod cs2;
pub mod cs3;
