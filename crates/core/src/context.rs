//! Contextual awareness, quantified: how fast can the ambient sense a
//! change, and what does that speed cost?
//!
//! The keynote's opening promise is "contextual awareness" — the room
//! notices you. Concretely: events (a person enters, a door opens) occur
//! at random instants; `n` sensor nodes sample their detectors every
//! `sample_interval` with independent phases; a detection is the first
//! sample after the event, plus the MAC latency of reporting it. The
//! resulting **latency–power frontier** is the context-awareness design
//! rule: mean latency ≈ `interval/(n+1) + MAC/2`, while power buys down
//! both terms linearly in node count and check rate. Experiment F14.

use crate::case_studies::cs1::{cs1_budget, Cs1Config};
use ami_radio::{MacProtocol, PreambleSamplingMac, RadioPowerStates, TrafficLoad};
use ami_sim::sim_rng;
use ami_units::{Frequency, Power, TimeSpan};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Parameters of a context-detection deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextConfig {
    /// Number of sensor nodes covering the space.
    pub nodes: usize,
    /// Detector sampling interval per node.
    pub sample_interval: TimeSpan,
    /// LPL check interval of the reporting radio (sets report latency).
    pub check_interval: TimeSpan,
    /// Events to simulate.
    pub events: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ContextConfig {
    /// A room with 4 nodes sampling every 2 s, 1 s radio checks,
    /// 2000 simulated events.
    pub fn room_default() -> Self {
        Self {
            nodes: 4,
            sample_interval: TimeSpan::from_seconds(2.0),
            check_interval: TimeSpan::from_seconds(1.0),
            events: 2000,
            seed: 2003,
        }
    }
}

/// Measured context-awareness figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextReport {
    /// Mean event-to-report latency.
    pub mean_latency: TimeSpan,
    /// 95th-percentile latency.
    pub p95_latency: TimeSpan,
    /// Total deployment power (all nodes).
    pub total_power: Power,
}

impl ContextReport {
    /// The awareness figure of merit: latency × power (lower is better);
    /// deployments on the frontier minimize it.
    pub fn latency_power_product(&self) -> f64 {
        self.mean_latency.as_seconds() * self.total_power.as_watts()
    }
}

/// Simulates event detection by the deployment and derives its power
/// from the CS1 node model at the given sampling/check rates.
///
/// # Panics
///
/// Panics if `nodes` or `events` is zero, or intervals are not positive.
pub fn simulate_context_detection(config: &ContextConfig) -> ContextReport {
    assert!(config.nodes > 0, "need at least one node");
    assert!(config.events > 0, "need at least one event");
    assert!(
        config.sample_interval > TimeSpan::ZERO && config.check_interval > TimeSpan::ZERO,
        "intervals must be positive"
    );
    let mut rng = sim_rng(config.seed);
    let interval = config.sample_interval.as_seconds();
    // MAC report latency: mean of the LPL analysis (uniform over a check
    // interval at the sink side).
    let mac = PreambleSamplingMac::new(config.check_interval);
    let mac_latency = mac
        .analyze(&RadioPowerStates::sensor_default(), &TrafficLoad::idle())
        .mean_latency
        .as_seconds();

    let mut latencies: Vec<f64> = (0..config.events)
        .map(|_| {
            // Event at a uniform phase; each node's next sample is an
            // independent uniform over the interval; detection is the min.
            let first_sample: f64 = (0..config.nodes)
                .map(|_| rng.random_range(0.0..interval))
                .fold(f64::INFINITY, f64::min);
            first_sample + mac_latency
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let p95 = latencies[(latencies.len() as f64 * 0.95) as usize - 1];

    // Node power from the CS1 budget at these rates (reports stay at the
    // default cadence; sensing dominates through the sampling ADC/ASIP).
    let node_config = Cs1Config {
        check_interval: config.check_interval,
        sample_rate: Frequency::new(1.0 / interval),
        ..Cs1Config::default()
    };
    let (budget, _) = cs1_budget(&node_config);
    ContextReport {
        mean_latency: TimeSpan::new(mean),
        p95_latency: TimeSpan::new(p95),
        total_power: budget.total() * config.nodes as f64,
    }
}

/// Sweeps node count and sampling interval, returning the latency–power
/// points of the deployment design space (F14).
pub fn context_design_space(
    node_counts: &[usize],
    sample_intervals: &[TimeSpan],
) -> Vec<(usize, TimeSpan, ContextReport)> {
    let mut out = Vec::new();
    for &nodes in node_counts {
        for &sample_interval in sample_intervals {
            let config = ContextConfig {
                nodes,
                sample_interval,
                ..ContextConfig::room_default()
            };
            out.push((nodes, sample_interval, simulate_context_detection(&config)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_order_statistics() {
        // Mean of min of n uniforms over [0, T] is T/(n+1); plus MAC/2.
        let config = ContextConfig {
            nodes: 3,
            events: 20_000,
            ..ContextConfig::room_default()
        };
        let report = simulate_context_detection(&config);
        let expected = 2.0 / 4.0 + 0.5; // T/(n+1) + check/2
        assert!(
            (report.mean_latency.as_seconds() - expected).abs() < 0.05,
            "mean {} vs expected {expected}",
            report.mean_latency
        );
    }

    #[test]
    fn more_nodes_buy_latency_for_power() {
        let at = |nodes| {
            simulate_context_detection(&ContextConfig {
                nodes,
                ..ContextConfig::room_default()
            })
        };
        let one = at(1);
        let eight = at(8);
        assert!(eight.mean_latency < one.mean_latency);
        assert!(eight.total_power.as_watts() > 7.9 * one.total_power.as_watts());
    }

    #[test]
    fn faster_sampling_buys_latency_for_power() {
        let at = |secs| {
            simulate_context_detection(&ContextConfig {
                sample_interval: TimeSpan::from_seconds(secs),
                ..ContextConfig::room_default()
            })
        };
        let slow = at(8.0);
        let fast = at(0.5);
        assert!(fast.mean_latency < slow.mean_latency);
        assert!(fast.total_power >= slow.total_power);
    }

    #[test]
    fn p95_exceeds_mean() {
        let report = simulate_context_detection(&ContextConfig::room_default());
        assert!(report.p95_latency > report.mean_latency);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = simulate_context_detection(&ContextConfig::room_default());
        let b = simulate_context_detection(&ContextConfig::room_default());
        assert_eq!(a, b);
    }

    #[test]
    fn design_space_covers_grid() {
        let space = context_design_space(
            &[1, 4],
            &[TimeSpan::from_seconds(1.0), TimeSpan::from_seconds(4.0)],
        );
        assert_eq!(space.len(), 4);
    }
}
