//! `ami-core` — the primary contribution: the Ambient Intelligence device
//! model and the keynote's three case studies, executable.
//!
//! Aarts & Roovers (DATE 2003) analyse the consequences of the Ambient
//! Intelligence vision for electronic devices by (1) mapping technologies
//! on a power–information graph, (2) deriving three device classes from
//! their power budgets — the autonomous **µW-node**, the personal
//! **mW-node** and the static **W-node** — and (3) walking through three
//! case studies of the IC design challenges each class faces. This crate
//! makes all three moves concrete:
//!
//! * [`AmbientDevice`] — a device as the keynote sees it: a power budget
//!   (composed from `ami-arch` components), an energy source, and an
//!   information rate; classified by [`PowerClass`](ami_power::PowerClass)
//!   and locatable on the [`PowerInfoGraph`](ami_power::PowerInfoGraph).
//! * [`class_table`] — the T1 device-class characteristics table, derived
//!   (not transcribed) from the models.
//! * [`case_studies`] — CS1 (energy-harvesting sensor node), CS2
//!   (battery-powered audio receiver), CS3 (mains media hub), each a
//!   parameterized, reproducible experiment.
//! * [`scenario`] — an assembled "ambient room" mixing all three classes.
//!
//! # Example
//!
//! ```
//! use ami_core::case_studies::cs1::{Cs1Config, run_cs1};
//!
//! let result = run_cs1(&Cs1Config::default());
//! // The default 4 cm² photovoltaic node is sustainable in an office.
//! assert!(result.sustainability.sustainable);
//! ```

pub mod case_studies;
pub mod challenges;
pub mod class_table;
pub mod context;
pub mod design_space;
pub mod device;
pub mod scenario;

pub use challenges::{audit, Finding, Severity};
pub use class_table::{class_characteristics, ClassCharacteristics};
pub use context::{simulate_context_detection, ContextConfig, ContextReport};
pub use design_space::{cs1_frontier, explore_cs1, DesignCell};
pub use device::{AmbientDevice, EnergySource};
pub use scenario::{ambient_room, Scenario};
