//! The design-challenge audit: turn the keynote's qualitative "variety of
//! problems that have to be solved" into a checkable report per device.
//!
//! Given an [`AmbientDevice`], the audit inspects its budget and energy
//! source against the class contracts and flags the IC design challenges
//! the keynote enumerates: class/source mismatch, a dominant component
//! that does not scale, radio duty discipline, storage adequacy, and
//! thermal headroom.

use crate::device::{AmbientDevice, EnergySource};
use ami_power::PowerClass;
use ami_units::Power;
use serde::{Deserialize, Serialize};

/// Severity of an audit finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: a property worth knowing.
    Note,
    /// The design works but a keynote challenge is unaddressed.
    Warning,
    /// The device violates its class contract.
    Violation,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "WARNING",
            Severity::Violation => "VIOLATION",
        })
    }
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Short machine-stable identifier (kebab-case).
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
}

/// Audits a device against the keynote's class contracts.
///
/// # Example
///
/// ```
/// use ami_arch::SocBuilder;
/// use ami_core::challenges::{audit, Severity};
/// use ami_core::{AmbientDevice, EnergySource};
/// use ami_energy::{Battery, BatteryModel, Chemistry};
/// use ami_power::DeviceKind;
/// use ami_units::{DataRate, Power};
///
/// // A 5 W "portable" device: the audit flags the class violation.
/// let hog = AmbientDevice::new(
///     SocBuilder::new("hog").component("all", Power::from_watts(5.0)).build(),
///     EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Peukert)),
///     DataRate::from_megabits_per_second(1.0),
///     DeviceKind::Computation,
/// );
/// let findings = audit(&hog);
/// assert!(findings.iter().any(|f| f.severity == Severity::Violation));
/// ```
pub fn audit(device: &AmbientDevice) -> Vec<Finding> {
    let mut findings = Vec::new();
    let power = device.average_power();
    let class = device.class();

    // 1. Class/source consistency — the taxonomy's core contract.
    if !device.class_consistent() {
        findings.push(Finding {
            severity: Severity::Violation,
            rule: "class-source-mismatch",
            message: format!(
                "device burns {power} ({class}) but is fed by {}",
                match device.source() {
                    EnergySource::Harvested { .. } => "an energy harvester (µW contract)",
                    EnergySource::Battery(_) => "a battery (mW contract)",
                    EnergySource::Mains(_) => "mains",
                }
            ),
        });
    }

    // 2. Battery endurance: a personal device should survive a day.
    if let Some(life) = device.battery_life() {
        if life.as_hours() < 8.0 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "battery-endurance",
                message: format!("battery life {:.1} h is below a usage day", life.as_hours()),
            });
        } else {
            findings.push(Finding {
                severity: Severity::Note,
                rule: "battery-endurance",
                message: format!("battery life {:.1} h", life.as_hours()),
            });
        }
    }

    // 3. Thermal headroom for mains devices.
    if let Some(fits) = device.within_mains_ceiling() {
        if !fits {
            findings.push(Finding {
                severity: Severity::Violation,
                rule: "thermal-ceiling",
                message: format!("{power} exceeds the enclosure's power ceiling"),
            });
        }
    }

    // 4. Dominant-component concentration: a budget with one >70% line is
    //    hostage to that component's (non-)scaling.
    if let Some(dominant) = device.budget().dominant() {
        let share = device.budget().share(dominant);
        if share > 0.7 && device.budget().lines().len() > 1 {
            findings.push(Finding {
                severity: Severity::Warning,
                rule: "dominant-component",
                message: format!(
                    "'{}' is {:.0}% of the budget — the design scales only if it does",
                    dominant.name,
                    100.0 * share
                ),
            });
        }
    }

    // 5. µW-class information efficiency sanity: an autonomous node
    //    spending its budget must deliver measurable information.
    if class == PowerClass::MicroWatt && device.to_device_point().bits_per_joule() < 1.0 {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "information-efficiency",
            message: "the node delivers less than one bit per joule".to_owned(),
        });
    }

    // 6. Zero-power absurdity guard.
    if power == Power::ZERO {
        findings.push(Finding {
            severity: Severity::Violation,
            rule: "empty-budget",
            message: "the device has no power budget at all".to_owned(),
        });
    }

    findings
}

/// Renders findings as text lines, most severe first.
pub fn report(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.rule.cmp(b.rule)));
    let mut out = String::new();
    for f in sorted {
        out.push_str(&format!("[{}] {}: {}\n", f.severity, f.rule, f.message));
    }
    if out.is_empty() {
        out.push_str("no findings: the device honours its class contract\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ambient_room;
    use ami_arch::SocBuilder;
    use ami_energy::{Battery, BatteryModel, Chemistry, Mains};
    use ami_power::DeviceKind;
    use ami_units::DataRate;

    fn battery_device(total: Power) -> AmbientDevice {
        AmbientDevice::new(
            SocBuilder::new("dev").component("all", total).build(),
            EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Peukert)),
            DataRate::from_kilobits_per_second(64.0),
            DeviceKind::Computation,
        )
    }

    #[test]
    fn watt_on_battery_is_a_violation() {
        let findings = audit(&battery_device(Power::from_watts(5.0)));
        assert!(findings
            .iter()
            .any(|f| f.rule == "class-source-mismatch" && f.severity == Severity::Violation));
    }

    #[test]
    fn healthy_player_gets_notes_only() {
        let findings = audit(&battery_device(Power::from_milliwatts(40.0)));
        assert!(findings.iter().all(|f| f.severity < Severity::Violation));
        assert!(findings.iter().any(|f| f.rule == "battery-endurance"));
    }

    #[test]
    fn short_lived_battery_is_flagged() {
        // ~3 W from a small Li-ion: ~1 h of life.
        let findings = audit(&battery_device(Power::from_watts(3.0)));
        assert!(findings
            .iter()
            .any(|f| f.rule == "battery-endurance" && f.severity == Severity::Warning));
    }

    #[test]
    fn over_ceiling_mains_is_a_violation() {
        let hog = AmbientDevice::new(
            SocBuilder::new("hog")
                .component("all", Power::from_watts(20.0))
                .build(),
            EnergySource::Mains(Mains::new(Power::from_watts(10.0))),
            DataRate::from_megabits_per_second(8.0),
            DeviceKind::Computation,
        );
        let findings = audit(&hog);
        assert!(findings.iter().any(|f| f.rule == "thermal-ceiling"));
    }

    #[test]
    fn dominant_component_warning_fires_on_cs2() {
        // The CS2 receiver's RF tuner exceeds 70%: the audit must notice.
        let cs2 = crate::case_studies::cs2::run_cs2(&Default::default());
        let device = AmbientDevice::new(
            cs2.budget,
            EnergySource::Battery(Battery::new(Chemistry::AlkalineAa, BatteryModel::Peukert)),
            DataRate::from_kilobits_per_second(192.0),
            DeviceKind::Computation,
        );
        let findings = audit(&device);
        assert!(findings.iter().any(|f| f.rule == "dominant-component"));
    }

    #[test]
    fn ambient_room_audits_clean_of_violations() {
        let room = ambient_room(5);
        for device in room.devices() {
            let findings = audit(device);
            assert!(
                findings.iter().all(|f| f.severity < Severity::Violation),
                "{}: {:?}",
                device.name(),
                findings
            );
        }
    }

    #[test]
    fn report_orders_by_severity() {
        let findings = vec![
            Finding {
                severity: Severity::Note,
                rule: "a",
                message: "x".into(),
            },
            Finding {
                severity: Severity::Violation,
                rule: "b",
                message: "y".into(),
            },
        ];
        let text = report(&findings);
        let first = text.lines().next().unwrap();
        assert!(first.contains("VIOLATION"));
    }

    #[test]
    fn empty_findings_render_clean_bill() {
        assert!(report(&[]).contains("no findings"));
    }
}
