//! T1: the device-class characteristics table, *derived* from the models.
//!
//! Rather than transcribing the keynote's qualitative table, every cell is
//! computed: compute capability from the 130 nm intrinsic-efficiency bound
//! at the class's power budget, communication reach from a closed link
//! budget at the class's radio power, and lifetime from the class's
//! natural energy source.

use ami_energy::{Battery, BatteryModel, Chemistry, EnvironmentSample, Harvester};
use ami_power::PowerClass;
use ami_radio::{LinkBudget, Modulation, PathLossModel};
use ami_tech::{intrinsic_efficiency, TechnologyNode};
use ami_units::{Area, ComputeRate, DataRate, Frequency, Length, Power, TimeSpan};

/// One row of the T1 table.
#[derive(Debug, Clone)]
pub struct ClassCharacteristics {
    /// The device class.
    pub class: PowerClass,
    /// The keynote's device archetype name.
    pub archetype: &'static str,
    /// Representative power budget (geometric centre of the band).
    pub power_budget: Power,
    /// Energy source description.
    pub energy_source: &'static str,
    /// Operating-time figure on that source (`None` = unlimited/mains).
    pub endurance: Option<TimeSpan>,
    /// Compute capability at the 130 nm ASIC bound within the budget.
    pub compute_capability: ComputeRate,
    /// Indoor radio reach when a tenth of the budget drives the PA.
    pub radio_reach: Length,
}

/// Representative budget per class: 30 µW, 100 mW, 10 W.
fn representative_budget(class: PowerClass) -> Power {
    match class {
        PowerClass::MicroWatt => Power::from_microwatts(30.0),
        PowerClass::MilliWatt => Power::from_milliwatts(100.0),
        PowerClass::Watt => Power::from_watts(10.0),
    }
}

/// Computes the T1 rows from the toolkit models at the 130 nm node.
///
/// # Example
///
/// ```
/// use ami_core::class_characteristics;
/// use ami_power::PowerClass;
///
/// let rows = class_characteristics();
/// assert_eq!(rows.len(), 3);
/// // Even the µW budget affords real DSP work at the ASIC bound.
/// assert!(rows[0].compute_capability.as_mops() > 1.0);
/// ```
pub fn class_characteristics() -> Vec<ClassCharacteristics> {
    let node = TechnologyNode::n130();
    let ice = intrinsic_efficiency(&node, node.vdd_nominal());
    let link = LinkBudget::new(
        PathLossModel::indoor(Frequency::from_megahertz(868.0)),
        Modulation::Fsk,
        10.0,
        1e-4,
    );

    PowerClass::all()
        .into_iter()
        .map(|class| {
            let budget = representative_budget(class);
            let endurance = match class {
                PowerClass::MicroWatt => {
                    // Perpetual iff a palm-sized PV cell covers the budget
                    // in an office; report a day-scale figure from the
                    // harvester instead of a battery life.
                    let pv = Harvester::photovoltaic(Area::from_square_centimeters(8.0));
                    let harvest = pv.power_output(&EnvironmentSample::office());
                    if harvest >= budget {
                        None // energy-neutral: unlimited
                    } else {
                        Some(TimeSpan::from_days(1.0))
                    }
                }
                PowerClass::MilliWatt => Some(
                    Battery::new(Chemistry::LiIon, BatteryModel::Peukert).lifetime_under(budget),
                ),
                PowerClass::Watt => None, // mains
            };
            ClassCharacteristics {
                class,
                archetype: class.device_name(),
                power_budget: budget,
                energy_source: class.energy_source(),
                endurance,
                compute_capability: ice * budget,
                radio_reach: link.max_range(budget * 0.1, DataRate::from_kilobits_per_second(50.0)),
            }
        })
        .collect()
}

/// Renders the T1 table as aligned text rows.
pub fn class_table_text() -> String {
    let mut out = format!(
        "{:<16}  {:>10}  {:<40}  {:>14}  {:>12}  {:>10}\n",
        "class", "budget", "energy source", "compute (ASIC)", "radio reach", "endurance"
    );
    for row in class_characteristics() {
        out.push_str(&format!(
            "{:<16}  {:>10}  {:<40}  {:>10.0} MOPS  {:>10.0} m  {:>10}\n",
            row.class.to_string(),
            row.power_budget.to_string(),
            row.energy_source,
            row.compute_capability.as_mops(),
            row.radio_reach.as_meters(),
            match row.endurance {
                None => "unlimited".to_owned(),
                Some(t) => format!("{:.0} h", t.as_hours()),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_rows_in_class_order() {
        let rows = class_characteristics();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].class, PowerClass::MicroWatt);
        assert_eq!(rows[2].class, PowerClass::Watt);
    }

    #[test]
    fn budgets_ascend_by_decades() {
        let rows = class_characteristics();
        for pair in rows.windows(2) {
            assert!(pair[1].power_budget.as_watts() / pair[0].power_budget.as_watts() > 50.0);
        }
    }

    #[test]
    fn compute_capability_scales_with_budget() {
        let rows = class_characteristics();
        assert!(
            rows[0].compute_capability.as_mops() > 1.0,
            "µW node computes"
        );
        assert!(
            rows[1].compute_capability.as_gops() > 1.0,
            "mW node is GOPS-class"
        );
        assert!(
            rows[2].compute_capability.as_gops() > 100.0,
            "W node is 100 GOPS-class"
        );
    }

    #[test]
    fn radio_reach_grows_with_class() {
        let rows = class_characteristics();
        assert!(rows[0].radio_reach < rows[1].radio_reach);
        assert!(rows[1].radio_reach < rows[2].radio_reach);
        // The µW node still reaches across a room.
        assert!(rows[0].radio_reach.as_meters() > 3.0);
    }

    #[test]
    fn endurance_semantics() {
        let rows = class_characteristics();
        // µW node: energy-neutral in the office → unlimited.
        assert!(rows[0].endurance.is_none());
        // mW node: a battery figure of hours-to-days.
        let life = rows[1].endurance.expect("battery life");
        assert!(life.as_hours() > 5.0 && life.as_days() < 20.0);
        // W node: mains.
        assert!(rows[2].endurance.is_none());
    }

    #[test]
    fn text_table_mentions_every_class() {
        let t = class_table_text();
        for class in PowerClass::all() {
            assert!(t.contains(&class.to_string()));
        }
        assert!(t.contains("unlimited"));
    }
}
