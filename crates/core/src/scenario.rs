//! An assembled ambient environment mixing all three device classes.

use crate::case_studies::cs1::{cs1_budget, Cs1Config};
use crate::case_studies::cs2::{run_cs2, Cs2Config};
use crate::device::{AmbientDevice, EnergySource};
use ami_arch::SocBuilder;
use ami_energy::{
    Battery, BatteryModel, Chemistry, EnvironmentProfile, Harvester, Mains, Pmu, Storage,
};
use ami_power::{DeviceKind, PowerClass, PowerInfoGraph};
use ami_units::{DataRate, Power};

/// A named collection of ambient devices.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    devices: Vec<AmbientDevice>,
}

impl Scenario {
    /// Creates a scenario.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(name: impl Into<String>, devices: Vec<AmbientDevice>) -> Self {
        assert!(!devices.is_empty(), "a scenario needs devices");
        Self {
            name: name.into(),
            devices,
        }
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The devices.
    pub fn devices(&self) -> &[AmbientDevice] {
        &self.devices
    }

    /// Total average power of the environment.
    pub fn total_power(&self) -> Power {
        self.devices.iter().map(|d| d.average_power()).sum()
    }

    /// Number of devices in each class, ordered µW/mW/W.
    pub fn class_census(&self) -> [usize; 3] {
        let mut census = [0usize; 3];
        for device in &self.devices {
            match device.class() {
                PowerClass::MicroWatt => census[0] += 1,
                PowerClass::MilliWatt => census[1] += 1,
                PowerClass::Watt => census[2] += 1,
            }
        }
        census
    }

    /// The scenario as a power–information graph.
    pub fn graph(&self) -> PowerInfoGraph {
        self.devices.iter().map(|d| d.to_device_point()).collect()
    }

    /// `true` when every device's power matches its energy source class.
    pub fn all_class_consistent(&self) -> bool {
        self.devices.iter().all(|d| d.class_consistent())
    }
}

/// Builds the keynote's ambient room: `sensors` harvesting sensor nodes,
/// one personal audio device and one mains media hub.
///
/// # Example
///
/// ```
/// use ami_core::ambient_room;
///
/// let room = ambient_room(8);
/// assert_eq!(room.class_census(), [8, 1, 1]);
/// assert!(room.all_class_consistent());
/// ```
///
/// # Panics
///
/// Panics if `sensors` is zero.
pub fn ambient_room(sensors: usize) -> Scenario {
    assert!(sensors > 0, "the room needs at least one sensor");
    let mut devices = Vec::new();

    // µW class: harvesting sensor nodes from CS1.
    let cs1 = Cs1Config::default();
    let (sensor_budget, _) = cs1_budget(&cs1);
    for idx in 0..sensors {
        let budget = SocBuilder::new(format!("sensor node {idx}"))
            .component("node", sensor_budget.total())
            .build();
        devices.push(AmbientDevice::new(
            budget,
            EnergySource::Harvested {
                harvester: Harvester::photovoltaic(cs1.pv_area),
                storage: Storage::supercapacitor(cs1.storage_capacitance, cs1.storage_voltage),
                pmu: Pmu::micro_power(),
                profile: EnvironmentProfile::office_day(),
            },
            DataRate::from_bits_per_second(200.0),
            DeviceKind::Communication,
        ));
    }

    // mW class: the personal audio receiver from CS2.
    let cs2 = run_cs2(&Cs2Config::default());
    devices.push(AmbientDevice::new(
        cs2.budget,
        EnergySource::Battery(Battery::new(Chemistry::AlkalineAa, BatteryModel::Peukert)),
        DataRate::from_kilobits_per_second(192.0),
        DeviceKind::Computation,
    ));

    // W class: the media hub (ASIC video path at SD plus the WLAN radio).
    let hub_budget = SocBuilder::new("media hub")
        .component("video pipeline", Power::from_watts(0.8))
        .component("wlan radio", Power::from_milliwatts(300.0))
        .component("io + psu overhead", Power::from_watts(1.5))
        .build();
    devices.push(AmbientDevice::new(
        hub_budget,
        EnergySource::Mains(Mains::new(Power::from_watts(10.0))),
        DataRate::from_megabits_per_second(8.0),
        DeviceKind::Computation,
    ));

    Scenario::new("ambient room", devices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn room_census_and_consistency() {
        let room = ambient_room(5);
        assert_eq!(room.class_census(), [5, 1, 1]);
        assert!(room.all_class_consistent());
        assert_eq!(room.devices().len(), 7);
    }

    #[test]
    fn hub_dominates_total_power() {
        // The W-node carries the room's power budget; the sensors are noise.
        let room = ambient_room(20);
        let total = room.total_power();
        let hub = room
            .devices()
            .iter()
            .find(|d| d.name() == "media hub")
            .unwrap()
            .average_power();
        assert!(hub.as_watts() / total.as_watts() > 0.8);
    }

    #[test]
    fn graph_reflects_all_devices() {
        let room = ambient_room(3);
        let graph = room.graph();
        assert_eq!(graph.len(), 5);
        assert_eq!(graph.in_class(PowerClass::MicroWatt).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn empty_room_rejected() {
        let _ = ambient_room(0);
    }
}
