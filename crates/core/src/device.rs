//! The ambient device model: budget + energy source + information rate.

use ami_arch::Soc;
use ami_energy::{Battery, EnvironmentProfile, Harvester, Mains, Pmu, Storage};
use ami_power::{DeviceKind, DevicePoint, PowerClass};
use ami_units::{DataRate, Power, TimeSpan};

/// How a device is fed — the keynote's class-defining property.
#[derive(Debug, Clone)]
pub enum EnergySource {
    /// Scavenged ambient energy through a PMU into a buffer.
    Harvested {
        /// The transducer.
        harvester: Harvester,
        /// The buffer between harvester and load.
        storage: Storage,
        /// Conversion losses.
        pmu: Pmu,
        /// The ambient conditions driving the harvester.
        profile: EnvironmentProfile,
    },
    /// A primary or secondary cell.
    Battery(Battery),
    /// Wall power with a thermal ceiling.
    Mains(Mains),
}

impl EnergySource {
    /// The class this source conventionally supports.
    pub fn natural_class(&self) -> PowerClass {
        match self {
            EnergySource::Harvested { .. } => PowerClass::MicroWatt,
            EnergySource::Battery(_) => PowerClass::MilliWatt,
            EnergySource::Mains(_) => PowerClass::Watt,
        }
    }
}

/// An ambient-intelligence device: a component power budget, an energy
/// source and the information rate it sustains.
///
/// # Example
///
/// ```
/// use ami_arch::SocBuilder;
/// use ami_core::{AmbientDevice, EnergySource};
/// use ami_energy::{Battery, BatteryModel, Chemistry};
/// use ami_power::{DeviceKind, PowerClass};
/// use ami_units::{DataRate, Power};
///
/// let budget = SocBuilder::new("player")
///     .component("dsp", Power::from_milliwatts(4.0))
///     .component("dac", Power::from_milliwatts(8.0))
///     .build();
/// let player = AmbientDevice::new(
///     budget,
///     EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Peukert)),
///     DataRate::from_kilobits_per_second(128.0),
///     DeviceKind::Computation,
/// );
/// assert_eq!(player.class(), PowerClass::MilliWatt);
/// assert!(player.battery_life().unwrap().as_hours() > 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct AmbientDevice {
    budget: Soc,
    source: EnergySource,
    info_rate: DataRate,
    kind: DeviceKind,
}

impl AmbientDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `info_rate` is not positive.
    pub fn new(budget: Soc, source: EnergySource, info_rate: DataRate, kind: DeviceKind) -> Self {
        assert!(
            info_rate.as_bits_per_second() > 0.0,
            "information rate must be positive"
        );
        Self {
            budget,
            source,
            info_rate,
            kind,
        }
    }

    /// Device name (from its budget).
    pub fn name(&self) -> &str {
        self.budget.name()
    }

    /// The component power budget.
    pub fn budget(&self) -> &Soc {
        &self.budget
    }

    /// The energy source.
    pub fn source(&self) -> &EnergySource {
        &self.source
    }

    /// Average power (total of the budget).
    pub fn average_power(&self) -> Power {
        self.budget.total()
    }

    /// Information rate the device sustains.
    pub fn info_rate(&self) -> DataRate {
        self.info_rate
    }

    /// The keynote power class of this device (by actual average power).
    pub fn class(&self) -> PowerClass {
        PowerClass::of(self.average_power())
    }

    /// `true` when the device's actual power matches its energy source's
    /// natural class — the keynote's design-closure criterion.
    pub fn class_consistent(&self) -> bool {
        self.class() <= self.source.natural_class()
    }

    /// Battery lifetime under the average load, for battery devices.
    pub fn battery_life(&self) -> Option<TimeSpan> {
        match &self.source {
            EnergySource::Battery(battery) if self.average_power() > Power::ZERO => {
                Some(battery.lifetime_under(self.average_power()))
            }
            _ => None,
        }
    }

    /// Whether a mains device fits under its thermal ceiling.
    pub fn within_mains_ceiling(&self) -> Option<bool> {
        match &self.source {
            EnergySource::Mains(mains) => Some(mains.supports(self.average_power())),
            _ => None,
        }
    }

    /// This device as a point on the power–information graph.
    pub fn to_device_point(&self) -> DevicePoint {
        DevicePoint::new(
            self.name().to_owned(),
            self.info_rate,
            self.average_power(),
            self.kind,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ami_arch::SocBuilder;
    use ami_energy::{BatteryModel, Chemistry};
    use ami_units::{Area, Capacitance, Voltage};

    fn battery_device(total_mw: f64) -> AmbientDevice {
        AmbientDevice::new(
            SocBuilder::new("dev")
                .component("all", Power::from_milliwatts(total_mw))
                .build(),
            EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Linear)),
            DataRate::from_kilobits_per_second(64.0),
            DeviceKind::Computation,
        )
    }

    #[test]
    fn classification_follows_budget() {
        assert_eq!(battery_device(0.5).class(), PowerClass::MicroWatt);
        assert_eq!(battery_device(50.0).class(), PowerClass::MilliWatt);
        assert_eq!(battery_device(5000.0).class(), PowerClass::Watt);
    }

    #[test]
    fn class_consistency_detects_mismatch() {
        // 5 W from a battery: inconsistent with the mW-node contract.
        assert!(!battery_device(5000.0).class_consistent());
        assert!(battery_device(50.0).class_consistent());
        // A µW budget on a battery is also fine (over-provisioned source).
        assert!(battery_device(0.5).class_consistent());
    }

    #[test]
    fn battery_life_matches_model() {
        let dev = battery_device(31.45); // ≈ 8.5 mA at 3.7 V
        let life = dev.battery_life().unwrap();
        assert!((life.as_hours() - 100.0).abs() < 1.0);
    }

    #[test]
    fn mains_ceiling_check() {
        let hub = AmbientDevice::new(
            SocBuilder::new("hub")
                .component("all", Power::from_watts(8.0))
                .build(),
            EnergySource::Mains(Mains::new(Power::from_watts(10.0))),
            DataRate::from_megabits_per_second(8.0),
            DeviceKind::Computation,
        );
        assert_eq!(hub.within_mains_ceiling(), Some(true));
        assert!(hub.battery_life().is_none());
    }

    #[test]
    fn harvested_source_has_micro_natural_class() {
        let source = EnergySource::Harvested {
            harvester: Harvester::photovoltaic(Area::from_square_centimeters(4.0)),
            storage: Storage::supercapacitor(
                Capacitance::from_millifarads(100.0),
                Voltage::from_volts(2.5),
            ),
            pmu: Pmu::micro_power(),
            profile: EnvironmentProfile::office_day(),
        };
        assert_eq!(source.natural_class(), PowerClass::MicroWatt);
    }

    #[test]
    fn device_point_round_trip() {
        let dev = battery_device(50.0);
        let pt = dev.to_device_point();
        assert_eq!(pt.name(), "dev");
        assert_eq!(pt.power(), dev.average_power());
        assert_eq!(pt.class(), PowerClass::MilliWatt);
    }
}
