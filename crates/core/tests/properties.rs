//! Property-based tests for the core device model and case studies.

use ami_arch::{ArchitectureClass, SocBuilder};
use ami_core::case_studies::cs1::{cs1_budget, run_cs1, Cs1Config};
use ami_core::case_studies::cs3::{best_format, Cs3Config};
use ami_core::class_characteristics;
use ami_core::{AmbientDevice, EnergySource};
use ami_energy::{Battery, BatteryModel, Chemistry};
use ami_power::{DeviceKind, PowerClass};
use ami_units::{Area, DataRate, Power, TimeSpan};
use proptest::prelude::*;

proptest! {
    /// CS1 load is monotone non-increasing in the check interval and
    /// independent of the PV area.
    #[test]
    fn cs1_load_monotonicity(a in 0.05..8.0f64, b in 0.05..8.0f64, cm2 in 1.0..32.0f64) {
        let config_at = |secs: f64| Cs1Config {
            check_interval: TimeSpan::from_seconds(secs),
            pv_area: Area::from_square_centimeters(cm2),
            ..Cs1Config::default()
        };
        let (lo_budget, _) = cs1_budget(&config_at(a.min(b)));
        let (hi_budget, _) = cs1_budget(&config_at(a.max(b)));
        prop_assert!(hi_budget.total() <= lo_budget.total() * 1.0000001);
        // Area does not change the load (only the harvest).
        let (other, _) = cs1_budget(&Cs1Config {
            check_interval: TimeSpan::from_seconds(a.min(b)),
            pv_area: Area::from_square_centimeters(1.0),
            ..Cs1Config::default()
        });
        prop_assert!((other.total().as_watts() - lo_budget.total().as_watts()).abs() < 1e-15);
    }

    /// CS1 sustainability is monotone in PV area at a fixed interval.
    #[test]
    fn cs1_sustainability_monotone_in_area(seed_area in 1.0..24.0f64) {
        let run_at = |cm2: f64| {
            run_cs1(&Cs1Config {
                pv_area: Area::from_square_centimeters(cm2),
                ..Cs1Config::default()
            })
            .sustainability
            .sustainable
        };
        // If the smaller cell sustains, the bigger one must too.
        if run_at(seed_area) {
            prop_assert!(run_at(seed_area * 1.5));
        }
    }

    /// Device classification is consistent with the raw power thresholds
    /// for any budget.
    #[test]
    fn device_class_matches_power(total_uw in 0.1..1e7f64) {
        let device = AmbientDevice::new(
            SocBuilder::new("d")
                .component("all", Power::from_microwatts(total_uw))
                .build(),
            EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Linear)),
            DataRate::from_bits_per_second(100.0),
            DeviceKind::Computation,
        );
        prop_assert_eq!(device.class(), PowerClass::of(Power::from_microwatts(total_uw)));
        // A battery device always has a finite battery life.
        prop_assert!(device.battery_life().unwrap() > TimeSpan::ZERO);
    }

    /// CS3's best format never degrades with a higher ceiling.
    #[test]
    fn cs3_best_format_monotone_in_ceiling(watts in 0.05..10.0f64) {
        let tight = Cs3Config {
            ceiling: Power::from_watts(watts),
            ..Cs3Config::default()
        };
        let loose = Cs3Config {
            ceiling: Power::from_watts(watts * 2.0),
            ..Cs3Config::default()
        };
        for class in ArchitectureClass::all() {
            let a = best_format(&tight, class);
            let b = best_format(&loose, class);
            match (a, b) {
                (Some(fa), Some(fb)) => prop_assert!(fb >= fa),
                (Some(_), None) => prop_assert!(false, "ceiling increase lost feasibility"),
                _ => {}
            }
        }
    }
}

#[test]
fn class_table_is_internally_consistent() {
    for row in class_characteristics() {
        // Budget matches the class it represents.
        assert_eq!(PowerClass::of(row.power_budget), row.class);
        assert!(row.compute_capability.as_ops_per_second() > 0.0);
        assert!(row.radio_reach.as_meters() > 0.0);
    }
}
