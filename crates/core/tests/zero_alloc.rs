//! Proof that the CS1 day simulation's inner loop — event pop → state
//! transition → meter update — allocates nothing at steady state: a
//! counting global allocator measures `DaySimulation::run` in isolation
//! from setup (schedule construction, state interning) and teardown
//! (breakdown rendering). (This binary holds exactly one test so no
//! concurrent test pollutes the counter.)

use ami_core::case_studies::cs1::Cs1Config;
use ami_core::case_studies::cs1_trace::{trace_one_day, DaySimulation};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Counting is scoped to the measuring thread, so the libtest
    // harness's own background threads cannot leak allocations into a
    // measurement. Const-initialized, so reading it never allocates.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter is a
// side-effect-only atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.with(Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during(work: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    work();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn cs1_day_loop_allocates_nothing_at_steady_state() {
    let config = Cs1Config::default();

    // Setup (outside the measurement): schedules ~43 500 events and
    // interns the four power states.
    let mut sim = DaySimulation::new(&config);
    let during_run = allocations_during(|| {
        sim.run();
    });
    assert_eq!(
        during_run, 0,
        "CS1 day-sim inner loop allocated {during_run} times"
    );

    // The phased run must produce the numbers the one-call wrapper does.
    let phased = sim.finish();
    let whole = trace_one_day(&config);
    assert_eq!(
        phased.average_power.as_watts().to_bits(),
        whole.average_power.as_watts().to_bits()
    );
    assert_eq!(phased.transitions, whole.transitions);
    assert_eq!(phased.breakdown, whole.breakdown);

    // The counter itself must be live, or the zero above is vacuous.
    let control = allocations_during(|| {
        std::hint::black_box(vec![0u8; 32]);
    });
    assert!(control > 0, "the counter must actually be counting");
}
