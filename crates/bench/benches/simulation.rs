//! Benchmarks of the three simulators at realistic problem sizes.

use ami_bench::BENCH_SEED;
use ami_dvs::{simulate_taskset, DvsPolicy, TaskSet};
use ami_energy::{simulate_buffered_harvesting, EnvironmentProfile, Harvester, Pmu, Storage};
use ami_net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
use ami_tech::TechnologyNode;
use ami_units::{Area, Energy, Length, Power, TimeSpan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_network_gathering(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_gathering");
    for side in [4usize, 8, 12] {
        let topo = Topology::grid(side, Length::from_meters(25.0));
        let config = NetworkConfig::sensor_default();
        group.bench_with_input(
            BenchmarkId::new("min_energy_100_rounds", side * side),
            &topo,
            |b, topo| {
                b.iter(|| {
                    simulate_gathering(
                        black_box(topo),
                        RoutingStrategy::MinimumEnergy,
                        &config,
                        100,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_network_with_deaths(c: &mut Criterion) {
    // Route rebuilds on node death are the expensive path.
    let topo = Topology::random(60, Length::from_meters(120.0), BENCH_SEED);
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_millijoules(200.0);
    c.bench_function("network_gathering/with_deaths_60n_2000r", |b| {
        b.iter(|| {
            simulate_gathering(
                black_box(&topo),
                RoutingStrategy::MinimumEnergy,
                &config,
                2000,
            )
        })
    });
}

fn bench_dvs_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dvs_taskset");
    let dsp = ami_arch::Processor::new(
        "dsp",
        ami_arch::ArchitectureClass::Dsp,
        TechnologyNode::n130(),
    );
    let tasks = TaskSet::personal_audio();
    for policy in DvsPolicy::all() {
        group.bench_with_input(
            BenchmarkId::new("10s_horizon", policy.to_string()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    simulate_taskset(
                        black_box(&dsp),
                        &tasks,
                        policy,
                        TimeSpan::from_seconds(10.0),
                        BENCH_SEED,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_harvest_simulation(c: &mut Criterion) {
    let harvester = Harvester::photovoltaic(Area::from_square_centimeters(8.0));
    let pmu = Pmu::micro_power();
    let profile = EnvironmentProfile::office_day();
    c.bench_function("harvest/one_week_1min_steps", |b| {
        b.iter(|| {
            let mut storage = Storage::new(Energy::from_joules(3.0), Power::from_nanowatts(100.0));
            simulate_buffered_harvesting(
                black_box(&harvester),
                &pmu,
                &mut storage,
                Power::from_microwatts(10.0),
                &profile,
                TimeSpan::from_days(7.0),
                TimeSpan::from_minutes(1.0),
            )
        })
    });
}

fn bench_clustered_gathering(c: &mut Criterion) {
    let topo = Topology::grid(6, Length::from_meters(30.0));
    let radio = ami_radio::RadioEnergyModel::short_range_2003();
    c.bench_function("network_gathering/clustered_36n_1000r", |b| {
        b.iter(|| {
            ami_net::simulate_clustered(
                black_box(&topo),
                &radio,
                &ami_net::ClusterConfig::classic(),
                Energy::from_joules(5.0),
                1000,
                BENCH_SEED,
            )
        })
    });
}

fn bench_event_driven_cs1_day(c: &mut Criterion) {
    let config = ami_core::case_studies::cs1::Cs1Config::default();
    c.bench_function("cs1/event_driven_day_trace", |b| {
        b.iter(|| ami_core::case_studies::cs1_trace::trace_one_day(black_box(&config)))
    });
}

fn bench_parallel_replication(c: &mut Criterion) {
    // The acceptance workload for the parallel runner: 200 replications
    // of a full gathering simulation on a seeded random topology, serial
    // versus the seed-partitioned parallel path at 2/4/8 workers. The
    // per-seed work (~hundreds of µs) dwarfs the scoped-thread setup, so
    // on a multi-core host the parallel rows win; the parallel rows
    // compute the bit-identical Summary (asserted in
    // tests/determinism.rs), here we only time them.
    let replications = 200;
    let config = NetworkConfig::sensor_default();
    let config = &config;
    let observable = |seed: u64| {
        let topo = Topology::random(30, Length::from_meters(100.0), seed);
        simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, config, 50)
            .total_energy
            .as_joules()
    };
    let mut group = c.benchmark_group("replicate_200x_random_gathering");
    group.bench_function("serial", |b| {
        b.iter(|| ami_sim::replicate(black_box(replications), BENCH_SEED, observable))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ami_sim::replicate_par_threads(
                        threads,
                        black_box(replications),
                        BENCH_SEED,
                        observable,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_variation_monte_carlo(c: &mut Criterion) {
    let model = ami_tech::VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    c.bench_function("variation/yield_2000_dies", |b| {
        b.iter(|| {
            model.parametric_yield(
                black_box(&node),
                100e3,
                ami_units::Temperature::ROOM,
                ami_units::Frequency::from_gigahertz(1.05),
                Power::from_milliwatts(5.0),
                2000,
                BENCH_SEED,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_network_gathering,
    bench_network_with_deaths,
    bench_dvs_simulation,
    bench_harvest_simulation,
    bench_clustered_gathering,
    bench_event_driven_cs1_day,
    bench_parallel_replication,
    bench_variation_monte_carlo
);
criterion_main!(benches);
