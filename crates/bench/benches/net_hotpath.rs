//! Network-simulator hot paths at the snapshot sizes N ∈ {25, 100, 400,
//! 1600}: route building, healthy gather rounds, lossy ARQ rounds, and
//! faulted replication. The groups mirror the labels of
//! `expt_bench_snapshot` / `BENCH_NET.json`, so criterion runs and the
//! machine-readable trajectory stay comparable.

use ami_bench::BENCH_SEED;
use ami_net::{
    build_routes, replicate_gathering_faulted_observed_threads, set_par_min_nodes_per_worker,
    simulate_gathering, simulate_gathering_par, simulate_lossy_gathering,
    simulate_lossy_gathering_par, LossyConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ami_sim::fault::FaultSpec;
use ami_units::Length;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Snapshot sweep sizes (constant node density: field side 25·√N m).
const SIZES: [usize; 4] = [25, 100, 400, 1600];
const GATHER_ROUNDS: u64 = 10;
const LOSSY_ROUNDS: u64 = 10;
const FAULT_REPS: usize = 3;
const FAULT_ROUNDS: u64 = 30;
const FAULT_MIX: &str = "death=0.1,outage=0.2:10,link=0.1:8";

fn field(n: usize) -> Topology {
    let side = Length::from_meters(25.0 * (n as f64).sqrt());
    Topology::random(n, side, BENCH_SEED)
}

fn bench_route_build(c: &mut Criterion) {
    let config = NetworkConfig::sensor_default();
    let mut group = c.benchmark_group("route_build");
    for n in SIZES {
        let topo = field(n);
        group.bench_with_input(BenchmarkId::new("min_energy", n), &topo, |b, topo| {
            b.iter(|| {
                build_routes(
                    black_box(topo),
                    RoutingStrategy::MinimumEnergy,
                    &config.radio,
                    config.max_hop,
                )
            })
        });
    }
    group.finish();
}

fn bench_gather_round(c: &mut Criterion) {
    let config = NetworkConfig::sensor_default();
    let mut group = c.benchmark_group("gather_round");
    for n in SIZES {
        let topo = field(n);
        group.bench_with_input(
            BenchmarkId::new("healthy_10_rounds", n),
            &topo,
            |b, topo| {
                b.iter(|| {
                    simulate_gathering(
                        black_box(topo),
                        RoutingStrategy::MinimumEnergy,
                        &config,
                        GATHER_ROUNDS,
                    )
                })
            },
        );
    }
    group.finish();
}

/// The region-parallel PDES engine on the same healthy workload —
/// mirrors the snapshot's `gather_round_par` city rows at criterion
/// scale. Worker counts are explicit (1 = engine bookkeeping overhead
/// vs the serial `gather_round` group, 8 = the parallel win on a
/// multi-core box). The criterion sizes sit below the engine's
/// nodes-per-worker floor, so the group force-engages it — the point
/// is to time the engine, not the dispatch heuristic.
fn bench_gather_round_par(c: &mut Criterion) {
    let config = NetworkConfig::sensor_default();
    let par_floor = set_par_min_nodes_per_worker(Some(0));
    let mut group = c.benchmark_group("gather_round_par");
    for n in SIZES {
        let topo = field(n);
        for threads in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("healthy_10_rounds_t{threads}"), n),
                &topo,
                |b, topo| {
                    b.iter(|| {
                        simulate_gathering_par(
                            black_box(topo),
                            RoutingStrategy::MinimumEnergy,
                            &config,
                            GATHER_ROUNDS,
                            threads,
                        )
                    })
                },
            );
        }
    }
    group.finish();
    set_par_min_nodes_per_worker(par_floor);
}

fn bench_lossy_round(c: &mut Criterion) {
    let config = LossyConfig::bruised_channel();
    let mut group = c.benchmark_group("lossy_round");
    for n in SIZES {
        let topo = field(n);
        group.bench_with_input(BenchmarkId::new("arq_10_rounds", n), &topo, |b, topo| {
            b.iter(|| simulate_lossy_gathering(black_box(topo), &config, LOSSY_ROUNDS, BENCH_SEED))
        });
    }
    group.finish();
}

/// The rollback-free region-parallel lossy engine on the same ARQ
/// workload — mirrors the snapshot's `lossy_round_par` city rows.
/// Force-engaged past the nodes-per-worker floor like
/// `gather_round_par` above.
fn bench_lossy_round_par(c: &mut Criterion) {
    let config = LossyConfig::bruised_channel();
    let par_floor = set_par_min_nodes_per_worker(Some(0));
    let mut group = c.benchmark_group("lossy_round_par");
    for n in SIZES {
        let topo = field(n);
        for threads in [1usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("arq_10_rounds_t{threads}"), n),
                &topo,
                |b, topo| {
                    b.iter(|| {
                        simulate_lossy_gathering_par(
                            black_box(topo),
                            &config,
                            LOSSY_ROUNDS,
                            BENCH_SEED,
                            threads,
                        )
                    })
                },
            );
        }
    }
    group.finish();
    set_par_min_nodes_per_worker(par_floor);
}

fn bench_faulted_replication(c: &mut Criterion) {
    let config = NetworkConfig::sensor_default();
    let spec = FaultSpec::parse(FAULT_MIX).expect("frozen fault mix parses");
    let mut group = c.benchmark_group("faulted_replication");
    for n in SIZES {
        let side = Length::from_meters(25.0 * (n as f64).sqrt());
        group.bench_with_input(BenchmarkId::new("3x30_rounds", n), &n, |b, &n| {
            b.iter(|| {
                replicate_gathering_faulted_observed_threads(
                    1, // pinned worker: time the simulator, not the pool
                    FAULT_REPS,
                    BENCH_SEED,
                    |seed| Topology::random(n, side, seed),
                    |seed| spec.schedule_for(seed, n, FAULT_ROUNDS),
                    RoutingStrategy::MinimumEnergy,
                    &config,
                    FAULT_ROUNDS,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_route_build,
    bench_gather_round,
    bench_gather_round_par,
    bench_lossy_round,
    bench_lossy_round_par,
    bench_faulted_replication
);
criterion_main!(benches);
