//! Benchmarks of the analysis kernels.

use ami_bench::BENCH_SEED;
use ami_net::{build_routes, RoutingStrategy, Topology};
use ami_power::pareto_frontier;
use ami_radio::{LinkBudget, Modulation, PathLossModel, RadioEnergyModel};
use ami_sim::sim_rng;
use ami_tech::TechnologyNode;
use ami_units::{DataRate, Frequency, Length, Power};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::RngExt;
use std::hint::black_box;

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_frontier");
    for n in [100usize, 1000, 10_000] {
        let mut rng = sim_rng(BENCH_SEED);
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(1.0..1e9), rng.random_range(1e-6..100.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            b.iter(|| pareto_frontier(black_box(pts), |p| *p))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra_routes");
    let radio = RadioEnergyModel::short_range_2003();
    for n in [25usize, 100, 400] {
        let topo = Topology::random(n, Length::from_meters(200.0), BENCH_SEED);
        group.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| {
                build_routes(
                    black_box(topo),
                    RoutingStrategy::MinimumEnergy,
                    &radio,
                    Length::from_meters(45.0),
                )
            })
        });
    }
    group.finish();
}

fn bench_link_budget(c: &mut Criterion) {
    let link = LinkBudget::new(
        PathLossModel::indoor(Frequency::from_megahertz(868.0)),
        Modulation::Fsk,
        10.0,
        1e-4,
    );
    c.bench_function("link_budget/max_range", |b| {
        b.iter(|| {
            link.max_range(
                black_box(Power::from_milliwatts(1.0)),
                DataRate::from_kilobits_per_second(50.0),
            )
        })
    });
}

fn bench_dvs_bisection(c: &mut Criterion) {
    let node = TechnologyNode::n130();
    let target = Frequency::from_megahertz(300.0);
    c.bench_function("tech/min_vdd_bisection", |b| {
        b.iter(|| node.min_vdd_for(black_box(target)))
    });
}

criterion_group!(
    benches,
    bench_pareto,
    bench_routing,
    bench_link_budget,
    bench_dvs_bisection
);
criterion_main!(benches);
