//! Simulation-kernel and sweep-layer hot paths: the CS1 day simulation,
//! interned-id meter transitions, event-queue churn, A6's Monte-Carlo
//! die sweep and F12's design-space grid. The groups mirror the labels
//! of `expt_bench_snapshot` / `BENCH_SIM.json`, so criterion runs and
//! the machine-readable trajectory stay comparable.

use ami_bench::BENCH_SEED;
use ami_core::case_studies::cs1::Cs1Config;
use ami_core::case_studies::cs1_trace::trace_one_day;
use ami_core::design_space::explore_cs1;
use ami_sim::{replicate_par, sim_rng, EnergyMeter, EventQueue};
use ami_tech::{TechnologyNode, VariationModel};
use ami_units::{Area, Power, Temperature, TimeSpan};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const TRANSITIONS: u64 = 100_000;
const CHURNS: u64 = 100_000;

fn bench_day_sim_cs1(c: &mut Criterion) {
    let config = Cs1Config::default();
    let mut group = c.benchmark_group("day_sim_cs1");
    group.bench_function("default_node", |b| {
        b.iter(|| trace_one_day(black_box(&config)))
    });
    group.finish();
}

fn bench_state_meter_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_meter_transition");
    group.bench_function("interned_100k", |b| {
        b.iter(|| {
            let mut meter =
                EnergyMeter::new("baseline", Power::from_microwatts(2.0), TimeSpan::ZERO);
            let states = [
                meter.intern("baseline"),
                meter.intern("radio check"),
                meter.intern("radio tx"),
                meter.intern("radio startup"),
            ];
            for i in 0..TRANSITIONS {
                let id = states[(i % 4) as usize];
                meter.transition_id(
                    id,
                    Power::from_microwatts(5.0),
                    TimeSpan::from_seconds(i as f64),
                );
            }
            black_box(meter.transitions())
        })
    });
    group.finish();
}

fn bench_event_queue_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_churn");
    group.bench_function("pop_schedule_100k", |b| {
        b.iter(|| {
            let mut queue: EventQueue<u64> = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                queue.schedule_in(TimeSpan::from_seconds(i as f64), i);
            }
            for i in 0..CHURNS {
                let (_, e) = queue.pop().expect("queue stays populated");
                queue.schedule_in(TimeSpan::from_seconds(1000.0 + (e % 7) as f64), i);
            }
            black_box(queue.len())
        })
    });
    group.finish();
}

fn bench_mc_variation_2000(c: &mut Criterion) {
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let mut group = c.benchmark_group("mc_variation_2000");
    group.bench_function("leakage_spread", |b| {
        b.iter(|| {
            replicate_par(2000, 42, |seed| {
                let mut rng = sim_rng(seed);
                model
                    .sample_die(&node, 100e3, Temperature::ROOM, &mut rng)
                    .leakage
                    .as_watts()
            })
        })
    });
    group.finish();
}

fn bench_design_space_grid(c: &mut Criterion) {
    let config = Cs1Config::default();
    let areas: Vec<Area> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&cm2| Area::from_square_centimeters(cm2))
        .collect();
    let intervals: Vec<TimeSpan> = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let mut group = c.benchmark_group("design_space_grid");
    group.bench_function("f12_6x7", |b| {
        b.iter(|| explore_cs1(black_box(&config), &areas, &intervals))
    });
    group.finish();
}

// BENCH_SEED anchors the shared seed convention; the sweeps above pin
// their own experiment seeds (42) to stay label-compatible with A6.
const _: u64 = BENCH_SEED;

criterion_group!(
    benches,
    bench_day_sim_cs1,
    bench_state_meter_transition,
    bench_event_queue_churn,
    bench_mc_variation_2000,
    bench_design_space_grid
);
criterion_main!(benches);
