//! End-to-end regeneration cost of the headline experiments, so the
//! reproduction's own runtime is tracked as a first-class benchmark.

use ami_core::case_studies::cs1::{run_cs1, Cs1Config};
use ami_core::case_studies::cs2::{run_cs2, Cs2Config};
use ami_core::case_studies::cs3::{flexibility_table, Cs3Config};
use ami_core::{ambient_room, class_characteristics};
use ami_power::portfolio_2003;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_f1(c: &mut Criterion) {
    c.bench_function("experiments/f1_portfolio_graph", |b| {
        b.iter(|| {
            let graph = portfolio_2003();
            black_box((graph.frontier(), graph.table()))
        })
    });
}

fn bench_t1(c: &mut Criterion) {
    c.bench_function("experiments/t1_class_table", |b| {
        b.iter(|| black_box(class_characteristics()))
    });
}

fn bench_cs1(c: &mut Criterion) {
    let config = Cs1Config::default();
    c.bench_function("experiments/f3_cs1_three_days", |b| {
        b.iter(|| black_box(run_cs1(&config)))
    });
}

fn bench_cs2(c: &mut Criterion) {
    let config = Cs2Config::default();
    c.bench_function("experiments/t2_cs2_budget", |b| {
        b.iter(|| black_box(run_cs2(&config)))
    });
}

fn bench_cs3(c: &mut Criterion) {
    let config = Cs3Config::default();
    c.bench_function("experiments/f5_cs3_table", |b| {
        b.iter(|| black_box(flexibility_table(&config)))
    });
}

fn bench_room(c: &mut Criterion) {
    c.bench_function("experiments/ambient_room_12", |b| {
        b.iter(|| black_box(ambient_room(12)))
    });
}

criterion_group!(benches, bench_f1, bench_t1, bench_cs1, bench_cs2, bench_cs3, bench_room);
criterion_main!(benches);
