//! `ami-bench` — Criterion benchmark harness for the `ambience` toolkit.
//!
//! The benches live in `benches/`:
//!
//! * `simulation` — the three simulators (network gathering, DVS task
//!   sets, buffered harvesting) at realistic problem sizes;
//! * `analysis` — the analysis kernels (Pareto frontier, Dijkstra
//!   routing, link-budget and DVS bisections);
//! * `experiments` — end-to-end regeneration cost of the headline
//!   experiments (F3/F4/F5 kernels), so reproduction time is tracked;
//! * `net_hotpath` — the network-simulator hot paths (route build,
//!   gather/lossy rounds, faulted replication) at N ∈ {25, 100, 400,
//!   1600}, mirroring the `expt_bench_snapshot` / `BENCH_NET.json`
//!   labels;
//! * `sim_hotpath` — the simulation-kernel and sweep-layer hot paths
//!   (CS1 day sim, interned meter transitions, event-queue churn, A6
//!   Monte Carlo, F12 grid), mirroring the `BENCH_SIM.json` labels.
//!
//! Run with `cargo bench --workspace`.
//!
//! # Example
//!
//! Every bench builds its inputs from [`BENCH_SEED`], so two runs time
//! exactly the same workload:
//!
//! ```
//! use ami_bench::BENCH_SEED;
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(BENCH_SEED);
//! let mut b = StdRng::seed_from_u64(BENCH_SEED);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// Standard seed used across benches for reproducible inputs.
pub const BENCH_SEED: u64 = 2003;
