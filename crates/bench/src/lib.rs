//! `ami-bench` — Criterion benchmark harness for the `ambience` toolkit.
//!
//! The benches live in `benches/`:
//!
//! * `simulation` — the three simulators (network gathering, DVS task
//!   sets, buffered harvesting) at realistic problem sizes;
//! * `analysis` — the analysis kernels (Pareto frontier, Dijkstra
//!   routing, link-budget and DVS bisections);
//! * `experiments` — end-to-end regeneration cost of the headline
//!   experiments (F3/F4/F5 kernels), so reproduction time is tracked.
//!
//! Run with `cargo bench --workspace`.

/// Standard seed used across benches for reproducible inputs.
pub const BENCH_SEED: u64 = 2003;
