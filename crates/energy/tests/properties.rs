//! Property-based tests for the energy models.

use ami_energy::{Battery, BatteryModel, Chemistry, EnvironmentSample, Harvester, Pmu, Storage};
use ami_units::{Area, Energy, Illuminance, Power, TimeSpan};
use proptest::prelude::*;

fn any_chemistry() -> impl Strategy<Value = Chemistry> {
    prop_oneof![
        Just(Chemistry::AlkalineAa),
        Just(Chemistry::LiCoin),
        Just(Chemistry::LiIon),
        Just(Chemistry::NiMh),
    ]
}

fn any_model() -> impl Strategy<Value = BatteryModel> {
    prop_oneof![
        Just(BatteryModel::Linear),
        Just(BatteryModel::Peukert),
        Just(BatteryModel::RateCapacity),
    ]
}

proptest! {
    /// Draining in any number of chunks conserves energy: total delivered
    /// equals load × time until depletion, and never exceeds the rated
    /// energy under the linear model.
    #[test]
    fn drain_conserves_energy(
        chem in any_chemistry(),
        chunks in 1usize..50,
        load_mw in 1.0..500.0f64,
    ) {
        let mut battery = Battery::new(chem, BatteryModel::Linear);
        let rated = battery.remaining_energy();
        let load = Power::from_milliwatts(load_mw);
        let life = battery.lifetime_under(load);
        let chunk = TimeSpan::new(life.as_seconds() * 1.5 / chunks as f64);
        let mut delivered = Energy::ZERO;
        for _ in 0..chunks {
            delivered += battery.drain(load, chunk);
        }
        prop_assert!(delivered.as_joules() <= rated.as_joules() * (1.0 + 1e-9));
        // Having drained for 1.5 lifetimes, the cell must be empty.
        prop_assert!(battery.is_depleted());
        prop_assert!((delivered.as_joules() - rated.as_joules()).abs()
            <= 1e-6 * rated.as_joules());
    }

    /// State of charge stays in [0,1] through arbitrary drain/recharge.
    #[test]
    fn soc_bounded(
        chem in any_chemistry(),
        model in any_model(),
        ops in prop::collection::vec((0.0..2.0f64, 0.0..5.0f64), 1..30),
    ) {
        let mut battery = Battery::new(chem, model);
        for (kind, amount) in ops {
            if kind < 1.0 {
                let _ = battery.drain(
                    Power::from_milliwatts(amount * 100.0),
                    TimeSpan::from_hours(amount),
                );
            } else {
                battery.recharge(Energy::from_watt_hours(amount));
            }
            let soc = battery.state_of_charge();
            prop_assert!((0.0..=1.0).contains(&soc), "soc {soc}");
        }
    }

    /// Peukert lifetime never exceeds linear above the rated current and
    /// never falls below it underneath.
    #[test]
    fn peukert_bracketed_by_rate(chem in any_chemistry(), scale in 0.05..20.0f64) {
        let rated_load = chem.nominal_voltage() * chem.rated_current();
        let load = rated_load * scale;
        let linear = Battery::new(chem, BatteryModel::Linear).lifetime_under(load);
        let peukert = Battery::new(chem, BatteryModel::Peukert).lifetime_under(load);
        if scale > 1.0 {
            prop_assert!(peukert <= linear * 1.000001);
        } else {
            prop_assert!(peukert >= linear * 0.999999);
        }
    }

    /// Storage conservation: deposits minus withdrawals equals the level
    /// change (no leakage applied).
    #[test]
    fn storage_conservation(
        capacity in 0.1..10.0f64,
        ops in prop::collection::vec((0.0..2.0f64, 0.0..1.0f64), 1..40),
    ) {
        let mut storage = Storage::new(Energy::from_joules(capacity), Power::ZERO);
        let mut balance = 0.0;
        for (kind, joules) in ops {
            if kind < 1.0 {
                balance += storage.deposit(Energy::from_joules(joules)).as_joules();
            } else {
                balance -= storage.withdraw(Energy::from_joules(joules)).as_joules();
            }
            prop_assert!(storage.level().as_joules() <= capacity * (1.0 + 1e-12));
            prop_assert!(storage.level().as_joules() >= -1e-12);
        }
        prop_assert!((storage.level().as_joules() - balance).abs() < 1e-9);
    }

    /// PMU: output never exceeds input; round trip is identity.
    #[test]
    fn pmu_is_lossy_and_invertible(eff in 0.1..1.0f64, quiescent_uw in 0.0..100.0f64, load_uw in 0.0..1e5f64) {
        let pmu = Pmu::new(eff, Power::from_microwatts(quiescent_uw));
        let load = Power::from_microwatts(load_uw);
        let input = pmu.input_power_for(load);
        prop_assert!(input >= load);
        let back = pmu.output_power_from(input);
        prop_assert!((back.as_watts() - load.as_watts()).abs() <= 1e-12 * input.as_watts().max(1e-12));
    }

    /// Harvester output is linear in aperture and illuminance.
    #[test]
    fn pv_linear(area_cm2 in 0.1..100.0f64, lux in 0.0..5000.0f64) {
        let env = EnvironmentSample::with_illuminance(Illuminance::from_lux(lux));
        let one = Harvester::photovoltaic(Area::from_square_centimeters(area_cm2));
        let two = Harvester::photovoltaic(Area::from_square_centimeters(2.0 * area_cm2));
        let p1 = one.power_output(&env).as_watts();
        let p2 = two.power_output(&env).as_watts();
        prop_assert!((p2 - 2.0 * p1).abs() <= 1e-12 * p1.max(1e-12));
    }
}
