//! Energy buffers for harvesting nodes: supercapacitors and thin-film
//! stores, with self-discharge.

use ami_units::{Capacitance, Energy, Power, TimeSpan, Voltage};
use serde::{Deserialize, Serialize};

/// A capacitive energy buffer between harvester and load.
///
/// The store is modelled on the energy level directly (the PMU is assumed
/// to present a regulated rail), with a usable-energy window between empty
/// and full and an exponential-equivalent self-discharge approximated as a
/// constant leakage power at full charge scaled by the state of charge.
///
/// # Example
///
/// ```
/// use ami_energy::Storage;
/// use ami_units::{Capacitance, Energy, Power, TimeSpan, Voltage};
///
/// let mut cap = Storage::supercapacitor(
///     Capacitance::from_millifarads(100.0),
///     Voltage::from_volts(2.5),
/// );
/// cap.deposit(cap.capacity()); // charge fully: ~0.31 J usable
/// let got = cap.withdraw(Energy::from_millijoules(10.0));
/// assert_eq!(got.as_millijoules(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Storage {
    capacity: Energy,
    level: Energy,
    /// Self-discharge power at full charge.
    leak_at_full: Power,
}

impl Storage {
    /// A store with explicit usable capacity and full-charge leakage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `leak_at_full` is negative.
    pub fn new(capacity: Energy, leak_at_full: Power) -> Self {
        assert!(capacity > Energy::ZERO, "storage capacity must be positive");
        assert!(
            !leak_at_full.is_negative(),
            "leakage power must be non-negative"
        );
        Self {
            capacity,
            level: Energy::ZERO,
            leak_at_full,
        }
    }

    /// A supercapacitor rated `c` at `v_max`, usable down to `v_max/2`
    /// (¾ of the stored energy), leaking 1 µW per joule of capacity —
    /// the 2003 supercap ballpark of a few percent per day.
    pub fn supercapacitor(c: Capacitance, v_max: Voltage) -> Self {
        let full = c.stored_energy(v_max);
        let usable = full * 0.75;
        let leak = Power::from_microwatts(full.as_joules().max(1e-12));
        Self::new(usable, leak)
    }

    /// Usable capacity.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Current stored (usable) energy.
    pub fn level(&self) -> Energy {
        self.level
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        (self.level / self.capacity).clamp(0.0, 1.0)
    }

    /// `true` when no energy can be withdrawn.
    pub fn is_empty(&self) -> bool {
        self.level.as_joules() <= 0.0
    }

    /// Adds energy, returning the amount actually accepted (the rest is
    /// lost once full — a harvester with nowhere to put its output).
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn deposit(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "deposit must be non-negative");
        let room = self.capacity - self.level;
        let accepted = energy.min(room);
        self.level += accepted;
        accepted
    }

    /// Removes up to `energy`, returning the amount actually delivered.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is negative.
    pub fn withdraw(&mut self, energy: Energy) -> Energy {
        assert!(!energy.is_negative(), "withdrawal must be non-negative");
        let delivered = energy.min(self.level);
        self.level -= delivered;
        delivered
    }

    /// Applies self-discharge over `dt` (leakage scaled by state of charge).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn tick_self_discharge(&mut self, dt: TimeSpan) {
        assert!(!dt.is_negative(), "time step must be non-negative");
        let leak = self.leak_at_full * self.state_of_charge();
        let lost = (leak * dt).min(self.level);
        self.level -= lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Storage {
        Storage::new(Energy::from_joules(1.0), Power::from_microwatts(10.0))
    }

    #[test]
    fn deposit_clamps_at_capacity() {
        let mut s = store();
        assert_eq!(s.deposit(Energy::from_joules(0.6)).as_joules(), 0.6);
        assert!((s.deposit(Energy::from_joules(0.6)).as_joules() - 0.4).abs() < 1e-12);
        assert_eq!(s.state_of_charge(), 1.0);
    }

    #[test]
    fn withdraw_clamps_at_level() {
        let mut s = store();
        s.deposit(Energy::from_joules(0.3));
        assert!((s.withdraw(Energy::from_joules(0.5)).as_joules() - 0.3).abs() < 1e-12);
        assert!(s.is_empty());
        assert_eq!(s.withdraw(Energy::from_joules(0.1)), Energy::ZERO);
    }

    #[test]
    fn self_discharge_scales_with_soc() {
        let mut full = store();
        full.deposit(Energy::from_joules(1.0));
        let mut half = store();
        half.deposit(Energy::from_joules(0.5));
        let dt = TimeSpan::from_hours(10.0);
        full.tick_self_discharge(dt);
        half.tick_self_discharge(dt);
        let lost_full = 1.0 - full.level().as_joules();
        let lost_half = 0.5 - half.level().as_joules();
        assert!(lost_full > lost_half);
        assert!(lost_full > 0.0);
    }

    #[test]
    fn empty_store_does_not_go_negative() {
        let mut s = store();
        s.tick_self_discharge(TimeSpan::from_days(100.0));
        assert!(s.level() >= Energy::ZERO);
    }

    #[test]
    fn supercap_sizing() {
        let s = Storage::supercapacitor(
            Capacitance::from_millifarads(100.0),
            Voltage::from_volts(2.5),
        );
        // Full energy ½·0.1·6.25 = 0.3125 J; usable ¾ → 0.2344 J.
        assert!((s.capacity().as_joules() - 0.234_375).abs() < 1e-9);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Storage::new(Energy::ZERO, Power::ZERO);
    }
}
