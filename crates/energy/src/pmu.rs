//! Power-management unit: the lossy gate between source and load.
//!
//! Converter efficiency is the silent killer of µW budgets: a switched-mode
//! converter that is 90 % efficient at milliwatts collapses below its
//! quiescent draw at microwatts. The [`Pmu`] model captures exactly that
//! with a fixed quiescent power plus a load-proportional conversion loss.

use ami_units::Power;
use serde::{Deserialize, Serialize};

/// A DC–DC converter / regulator with quiescent overhead.
///
/// `input = quiescent + load / efficiency` — the standard first-order
/// regulator model.
///
/// # Example
///
/// ```
/// use ami_energy::Pmu;
/// use ami_units::Power;
///
/// let pmu = Pmu::new(0.85, Power::from_microwatts(1.0));
/// let input = pmu.input_power_for(Power::from_microwatts(17.0));
/// assert!((input.as_microwatts() - 21.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pmu {
    efficiency: f64,
    quiescent: Power,
}

impl Pmu {
    /// Creates a PMU with the given peak conversion efficiency and
    /// quiescent power.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]` or `quiescent` is negative.
    pub fn new(efficiency: f64, quiescent: Power) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must lie in (0, 1]"
        );
        assert!(
            !quiescent.is_negative(),
            "quiescent power must be non-negative"
        );
        Self {
            efficiency,
            quiescent,
        }
    }

    /// An ideal (lossless, zero-quiescent) PMU.
    pub fn ideal() -> Self {
        Self::new(1.0, Power::ZERO)
    }

    /// A 2003-class micro-power boost converter: 85 % peak efficiency,
    /// 1 µW quiescent.
    pub fn micro_power() -> Self {
        Self::new(0.85, Power::from_microwatts(1.0))
    }

    /// A milliwatt-class buck converter: 90 % efficiency, 50 µW quiescent.
    pub fn milli_power() -> Self {
        Self::new(0.90, Power::from_microwatts(50.0))
    }

    /// Peak conversion efficiency.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Quiescent (no-load) input power.
    pub fn quiescent(&self) -> Power {
        self.quiescent
    }

    /// Input power required to serve `load` at the output.
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative.
    pub fn input_power_for(&self, load: Power) -> Power {
        assert!(!load.is_negative(), "load must be non-negative");
        self.quiescent + load / self.efficiency
    }

    /// Output power available from `input` (zero below the quiescent draw).
    ///
    /// # Panics
    ///
    /// Panics if `input` is negative.
    pub fn output_power_from(&self, input: Power) -> Power {
        assert!(!input.is_negative(), "input must be non-negative");
        ((input - self.quiescent).max(Power::ZERO)) * self.efficiency
    }

    /// End-to-end efficiency at a given load (including quiescent loss).
    pub fn effective_efficiency(&self, load: Power) -> f64 {
        let input = self.input_power_for(load);
        if input == Power::ZERO {
            0.0
        } else {
            load / input
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_output_round_trip() {
        let pmu = Pmu::micro_power();
        let load = Power::from_microwatts(50.0);
        let input = pmu.input_power_for(load);
        let back = pmu.output_power_from(input);
        assert!((back.as_microwatts() - load.as_microwatts()).abs() < 1e-9);
    }

    #[test]
    fn effective_efficiency_collapses_at_microwatt_loads() {
        let pmu = Pmu::milli_power();
        let heavy = pmu.effective_efficiency(Power::from_milliwatts(10.0));
        let tiny = pmu.effective_efficiency(Power::from_microwatts(5.0));
        assert!(heavy > 0.85);
        assert!(tiny < 0.1, "quiescent power must dominate tiny loads");
    }

    #[test]
    fn ideal_pmu_is_transparent() {
        let pmu = Pmu::ideal();
        let load = Power::from_milliwatts(3.0);
        assert_eq!(pmu.input_power_for(load), load);
        assert_eq!(pmu.output_power_from(load), load);
        assert_eq!(pmu.effective_efficiency(load), 1.0);
    }

    #[test]
    fn sub_quiescent_input_yields_nothing() {
        let pmu = Pmu::micro_power();
        assert_eq!(
            pmu.output_power_from(Power::from_nanowatts(500.0)),
            Power::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = Pmu::new(0.0, Power::ZERO);
    }
}
