//! Battery models for the personal (mW) device class.
//!
//! Three fidelity levels are provided — the A2 ablation compares them:
//!
//! * [`BatteryModel::Linear`]: an ideal energy tank.
//! * [`BatteryModel::Peukert`]: capacity shrinks at high discharge rates
//!   following Peukert's law.
//! * [`BatteryModel::RateCapacity`]: a piecewise rate-capacity derating
//!   typical of 2003-era primary-cell datasheets (gentler than Peukert at
//!   low rates, harsher above the rated current).

use ami_units::{Charge, Current, Energy, Power, TimeSpan, Voltage};
use serde::{Deserialize, Serialize};

/// Battery chemistry presets with circa-2003 datasheet numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chemistry {
    /// Alkaline AA primary cell: 1.5 V, 2850 mAh, rated at 50 mA.
    AlkalineAa,
    /// Lithium coin CR2032: 3.0 V, 225 mAh, rated at 0.2 mA.
    LiCoin,
    /// Lithium-ion pouch (PDA/phone class): 3.7 V, 850 mAh, rated at 170 mA.
    LiIon,
    /// NiMH AA rechargeable: 1.2 V, 1800 mAh, rated at 180 mA.
    NiMh,
}

impl Chemistry {
    /// Nominal terminal voltage.
    pub fn nominal_voltage(self) -> Voltage {
        match self {
            Chemistry::AlkalineAa => Voltage::from_volts(1.5),
            Chemistry::LiCoin => Voltage::from_volts(3.0),
            Chemistry::LiIon => Voltage::from_volts(3.7),
            Chemistry::NiMh => Voltage::from_volts(1.2),
        }
    }

    /// Rated charge capacity.
    pub fn rated_capacity(self) -> Charge {
        match self {
            Chemistry::AlkalineAa => Charge::from_milliamp_hours(2850.0),
            Chemistry::LiCoin => Charge::from_milliamp_hours(225.0),
            Chemistry::LiIon => Charge::from_milliamp_hours(850.0),
            Chemistry::NiMh => Charge::from_milliamp_hours(1800.0),
        }
    }

    /// Discharge current at which the rated capacity is specified.
    pub fn rated_current(self) -> Current {
        match self {
            Chemistry::AlkalineAa => Current::from_milliamps(50.0),
            Chemistry::LiCoin => Current::from_milliamps(0.2),
            Chemistry::LiIon => Current::from_milliamps(170.0),
            Chemistry::NiMh => Current::from_milliamps(180.0),
        }
    }

    /// Peukert exponent (1.0 = ideal; alkaline cells are the worst).
    pub fn peukert_exponent(self) -> f64 {
        match self {
            Chemistry::AlkalineAa => 1.30,
            Chemistry::LiCoin => 1.08,
            Chemistry::LiIon => 1.05,
            Chemistry::NiMh => 1.10,
        }
    }

    /// Rated stored energy (`capacity × nominal voltage`).
    pub fn rated_energy(self) -> Energy {
        self.nominal_voltage() * self.rated_capacity()
    }
}

impl std::fmt::Display for Chemistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Chemistry::AlkalineAa => "alkaline AA",
            Chemistry::LiCoin => "Li coin CR2032",
            Chemistry::LiIon => "Li-ion 850 mAh",
            Chemistry::NiMh => "NiMH AA",
        };
        f.write_str(s)
    }
}

/// Discharge-model fidelity selector (ablation A2).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum BatteryModel {
    /// Ideal energy tank: delivered charge is independent of rate.
    Linear,
    /// Peukert's law: effective capacity `C·(I_rated/I)^(k−1)`.
    #[default]
    Peukert,
    /// Datasheet-style rate-capacity derating: no penalty at or below the
    /// rated current, Peukert-like above it.
    RateCapacity,
}

/// A primary or secondary cell with a rate-dependent discharge model.
///
/// # Example
///
/// ```
/// use ami_energy::{Battery, BatteryModel, Chemistry};
/// use ami_units::Power;
///
/// let ideal = Battery::new(Chemistry::AlkalineAa, BatteryModel::Linear);
/// let real = Battery::new(Chemistry::AlkalineAa, BatteryModel::Peukert);
/// let heavy = Power::from_milliwatts(750.0); // 0.5 A draw
/// // Peukert derating shortens life under heavy load.
/// assert!(real.lifetime_under(heavy) < ideal.lifetime_under(heavy));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    chemistry: Chemistry,
    model: BatteryModel,
    remaining: Charge,
}

impl Battery {
    /// A fresh cell of the given chemistry and discharge model.
    pub fn new(chemistry: Chemistry, model: BatteryModel) -> Self {
        Self {
            chemistry,
            model,
            remaining: chemistry.rated_capacity(),
        }
    }

    /// The cell chemistry.
    pub fn chemistry(&self) -> Chemistry {
        self.chemistry
    }

    /// The active discharge model.
    pub fn model(&self) -> BatteryModel {
        self.model
    }

    /// Remaining charge (rate-independent bookkeeping quantity).
    pub fn remaining_charge(&self) -> Charge {
        self.remaining
    }

    /// Remaining energy at nominal voltage.
    pub fn remaining_energy(&self) -> Energy {
        self.chemistry.nominal_voltage() * self.remaining
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        (self.remaining / self.chemistry.rated_capacity()).clamp(0.0, 1.0)
    }

    /// `true` once the cell can no longer deliver charge.
    pub fn is_depleted(&self) -> bool {
        self.remaining.as_coulombs() <= 0.0
    }

    /// The rate-derating factor at discharge current `i`: how many coulombs
    /// of bookkeeping charge one delivered coulomb costs.
    fn derating(&self, i: Current) -> f64 {
        let i = i.as_amps();
        if i <= 0.0 {
            return 1.0;
        }
        let i_rated = self.chemistry.rated_current().as_amps();
        let k = self.chemistry.peukert_exponent();
        match self.model {
            BatteryModel::Linear => 1.0,
            BatteryModel::Peukert => (i / i_rated).powf(k - 1.0),
            BatteryModel::RateCapacity => {
                if i <= i_rated {
                    1.0
                } else {
                    (i / i_rated).powf(k - 1.0)
                }
            }
        }
    }

    /// Draws `load` for `dt`, returning the energy actually delivered
    /// (less than requested once the cell runs dry).
    ///
    /// # Panics
    ///
    /// Panics if `load` or `dt` is negative.
    pub fn drain(&mut self, load: Power, dt: TimeSpan) -> Energy {
        assert!(!load.is_negative(), "load must be non-negative");
        assert!(!dt.is_negative(), "time step must be non-negative");
        if self.is_depleted() || load == Power::ZERO || dt == TimeSpan::ZERO {
            return Energy::ZERO;
        }
        let v = self.chemistry.nominal_voltage();
        let i = Current::new(load.as_watts() / v.as_volts());
        let factor = self.derating(i);
        let requested = i * dt; // delivered charge
        let booked = Charge::new(requested.as_coulombs() * factor);
        if booked <= self.remaining {
            self.remaining -= booked;
            load * dt
        } else {
            // Deliver the pro-rata fraction and empty the cell.
            let fraction = self.remaining / booked;
            self.remaining = Charge::ZERO;
            load * dt * fraction
        }
    }

    /// Lifetime of a *fresh* cell under a constant `load` (does not mutate).
    ///
    /// Returns [`TimeSpan::ZERO`]-adjacent large values for vanishing loads;
    /// callers should treat a zero load as "infinite" themselves.
    ///
    /// # Panics
    ///
    /// Panics if `load` is zero or negative.
    pub fn lifetime_under(&self, load: Power) -> TimeSpan {
        assert!(
            load > Power::ZERO,
            "lifetime under a zero load is unbounded"
        );
        let v = self.chemistry.nominal_voltage();
        let i = Current::new(load.as_watts() / v.as_volts());
        let factor = self.derating(i);
        let effective = Charge::new(self.chemistry.rated_capacity().as_coulombs() / factor);
        effective / i
    }

    /// Applies a capacity fade: the cell now holds at most `factor` of
    /// its rated charge, and any stored charge above the faded ceiling
    /// is lost immediately.
    ///
    /// This is the storage-side hook for
    /// `ami_sim::fault::FaultEvent::CapacityFade` events (aging or
    /// cold-soaked cells). The chemistry's rated numbers are untouched —
    /// fade caps the *stored* charge, so repeated fades compose as the
    /// product of their factors and recharge still clamps at the rated
    /// capacity rather than the faded one.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_energy::{Battery, BatteryModel, Chemistry};
    ///
    /// let mut cell = Battery::new(Chemistry::LiCoin, BatteryModel::Linear);
    /// cell.apply_fade(0.5);
    /// assert!((cell.state_of_charge() - 0.5).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `[0, 1]`.
    pub fn apply_fade(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "fade factor must lie in [0, 1], got {factor}"
        );
        let ceiling = Charge::new(self.chemistry.rated_capacity().as_coulombs() * factor);
        self.remaining = self.remaining.min(ceiling);
    }

    /// Recharges by `energy` at nominal voltage, clamped at full
    /// (secondary chemistries; callers decide whether recharge is physical).
    pub fn recharge(&mut self, energy: Energy) {
        assert!(
            !energy.is_negative(),
            "recharge energy must be non-negative"
        );
        let dq = Charge::new(energy.as_joules() / self.chemistry.nominal_voltage().as_volts());
        self.remaining = (self.remaining + dq).min(self.chemistry.rated_capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_full() {
        let b = Battery::new(Chemistry::LiIon, BatteryModel::Linear);
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.is_depleted());
        assert!((b.remaining_energy().as_watt_hours() - 3.7 * 0.85).abs() < 1e-9);
    }

    #[test]
    fn linear_lifetime_is_energy_over_power() {
        let b = Battery::new(Chemistry::AlkalineAa, BatteryModel::Linear);
        let load = Power::from_milliwatts(15.0);
        let expected = b.remaining_energy().sustains_for(load);
        let got = b.lifetime_under(load);
        assert!((got.as_hours() - expected.as_hours()).abs() < 1e-9);
    }

    #[test]
    fn peukert_matches_linear_at_rated_current() {
        let lin = Battery::new(Chemistry::LiIon, BatteryModel::Linear);
        let peu = Battery::new(Chemistry::LiIon, BatteryModel::Peukert);
        let rated_load = Chemistry::LiIon.nominal_voltage() * Chemistry::LiIon.rated_current();
        let a = lin.lifetime_under(rated_load);
        let b = peu.lifetime_under(rated_load);
        assert!((a.as_hours() - b.as_hours()).abs() < 1e-9);
    }

    #[test]
    fn peukert_punishes_heavy_loads_and_rewards_light_ones() {
        let lin = Battery::new(Chemistry::AlkalineAa, BatteryModel::Linear);
        let peu = Battery::new(Chemistry::AlkalineAa, BatteryModel::Peukert);
        let heavy = Power::from_milliwatts(1500.0); // 1 A, 20x rated
        let light = Power::from_microwatts(150.0); // 0.1 mA, 1/500 rated
        assert!(peu.lifetime_under(heavy) < lin.lifetime_under(heavy));
        assert!(peu.lifetime_under(light) > lin.lifetime_under(light));
    }

    #[test]
    fn rate_capacity_never_exceeds_linear_below_rated() {
        let lin = Battery::new(Chemistry::NiMh, BatteryModel::Linear);
        let rc = Battery::new(Chemistry::NiMh, BatteryModel::RateCapacity);
        let light = Power::from_milliwatts(12.0); // 10 mA << 180 mA rated
        let a = lin.lifetime_under(light);
        let b = rc.lifetime_under(light);
        assert!((a.as_hours() - b.as_hours()).abs() < 1e-9);
        let heavy = Power::from_watts(1.2); // 1 A
        assert!(rc.lifetime_under(heavy) < lin.lifetime_under(heavy));
    }

    #[test]
    fn drain_bookkeeping_reaches_depletion() {
        let mut b = Battery::new(Chemistry::LiCoin, BatteryModel::Linear);
        let load = Power::from_milliwatts(3.0); // 1 mA at 3 V
        let life = b.lifetime_under(load);
        // Drain in 10 equal chunks: the first 9 deliver fully.
        let chunk = TimeSpan::new(life.as_seconds() / 10.0);
        for _ in 0..9 {
            let e = b.drain(load, chunk);
            assert!((e.as_joules() - (load * chunk).as_joules()).abs() < 1e-9);
        }
        assert!(!b.is_depleted());
        // The 11th chunk cannot deliver in full.
        let _ = b.drain(load, chunk);
        let e = b.drain(load, chunk);
        assert!(e < load * chunk);
        assert!(b.is_depleted());
        assert_eq!(b.drain(load, chunk), Energy::ZERO);
    }

    #[test]
    fn recharge_clamps_at_full() {
        let mut b = Battery::new(Chemistry::NiMh, BatteryModel::Linear);
        let _ = b.drain(Power::from_milliwatts(100.0), TimeSpan::from_hours(1.0));
        assert!(b.state_of_charge() < 1.0);
        b.recharge(Energy::from_watt_hours(1000.0));
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn zero_load_or_time_drain_is_noop() {
        let mut b = Battery::new(Chemistry::LiIon, BatteryModel::Peukert);
        assert_eq!(
            b.drain(Power::ZERO, TimeSpan::from_hours(1.0)),
            Energy::ZERO
        );
        assert_eq!(
            b.drain(Power::from_milliwatts(1.0), TimeSpan::ZERO),
            Energy::ZERO
        );
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn lifetime_zero_load_panics() {
        let b = Battery::new(Chemistry::LiIon, BatteryModel::Linear);
        let _ = b.lifetime_under(Power::ZERO);
    }

    #[test]
    fn fade_caps_stored_charge_and_composes_multiplicatively() {
        let mut b = Battery::new(Chemistry::AlkalineAa, BatteryModel::Linear);
        b.apply_fade(0.5);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-12);
        // A second fade to 40% of rated: already below it, nothing lost.
        b.apply_fade(0.6);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-12);
        b.apply_fade(0.2);
        assert!((b.state_of_charge() - 0.2).abs() < 1e-12);
        // Rated numbers are untouched: recharge still reaches full.
        b.recharge(Energy::from_watt_hours(1000.0));
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    #[should_panic(expected = "fade factor")]
    fn fade_factor_above_one_rejected() {
        let mut b = Battery::new(Chemistry::LiIon, BatteryModel::Linear);
        b.apply_fade(1.5);
    }

    #[test]
    fn chemistry_presets_are_sane() {
        for chem in [
            Chemistry::AlkalineAa,
            Chemistry::LiCoin,
            Chemistry::LiIon,
            Chemistry::NiMh,
        ] {
            assert!(chem.nominal_voltage().as_volts() > 0.0);
            assert!(chem.rated_capacity().as_coulombs() > 0.0);
            assert!(chem.peukert_exponent() >= 1.0);
            assert!(!chem.to_string().is_empty());
        }
    }
}
