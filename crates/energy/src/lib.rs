//! Energy sources and storage for Ambient Intelligence devices.
//!
//! The keynote's device taxonomy is, at heart, an *energy-source* taxonomy:
//!
//! * the **autonomous µW-node** lives on scavenged ambient energy
//!   ([`Harvester`]) buffered in a small store ([`Storage`]);
//! * the **personal mW-node** lives on a battery ([`Battery`]) that must
//!   last days-to-weeks;
//! * the **static W-node** is mains-powered ([`Mains`]) and limited by
//!   thermal budget instead.
//!
//! This crate models all three, plus the power-management unit
//! ([`Pmu`]) that sits between source and load, and day-scale
//! [`EnvironmentProfile`]s to drive harvesting simulations.
//!
//! # Example
//!
//! ```
//! use ami_energy::{Battery, BatteryModel, Chemistry};
//! use ami_units::Power;
//!
//! let cell = Battery::new(Chemistry::LiCoin, BatteryModel::Linear);
//! let life = cell.lifetime_under(Power::from_microwatts(100.0));
//! assert!(life.as_days() > 200.0); // a CR2032 holds ~0.7 Wh
//! ```

pub mod battery;
pub mod budget;
pub mod environment;
pub mod harvester;
pub mod kibam;
pub mod pmu;
pub mod storage;

pub use battery::{Battery, BatteryModel, Chemistry};
pub use budget::{
    simulate_buffered_harvesting, simulate_buffered_harvesting_report, BufferTrace,
    SustainabilityReport,
};
pub use environment::{EnvironmentProfile, EnvironmentSample};
pub use harvester::{Harvester, Mains};
pub use kibam::KineticBattery;
pub use pmu::Pmu;
pub use storage::Storage;
