//! The kinetic battery model (KiBaM): a two-well charge model that
//! captures *recovery* — the effect rate-based derating cannot.
//!
//! Charge sits in an available well (height `h1`) feeding the load and a
//! bound well (height `h2`) that replenishes it through a valve of rate
//! `k`. Under pulsed loads the available well refills during rest, so a
//! duty-cycled µW-node extracts more of the cell than a continuous drain
//! — the physical argument for bursty operation beyond what the Peukert
//! exponent shows.

use crate::battery::Chemistry;
use ami_units::{Charge, Current, Energy, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// A two-well kinetic battery.
///
/// # Example
///
/// ```
/// use ami_energy::{Chemistry, KineticBattery};
/// use ami_units::{Power, TimeSpan};
///
/// let mut cell = KineticBattery::from_chemistry(Chemistry::LiCoin);
/// cell.drain(Power::from_milliwatts(3.0), TimeSpan::from_hours(1.0));
/// assert!(cell.state_of_charge() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KineticBattery {
    /// Fraction of total charge in the available well at equilibrium.
    c: f64,
    /// Valve rate constant in 1/s.
    k: f64,
    /// Available charge (coulombs).
    y1: f64,
    /// Bound charge (coulombs).
    y2: f64,
    /// Total rated charge (coulombs).
    rated: f64,
    /// Terminal voltage.
    voltage: f64,
}

impl KineticBattery {
    /// Creates a cell with explicit KiBaM parameters, starting full.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `(0, 1)`, `k` is not positive, or the
    /// capacity/voltage are not positive.
    pub fn new(capacity: Charge, voltage_v: f64, c: f64, k: f64) -> Self {
        assert!(c > 0.0 && c < 1.0, "well split must lie in (0, 1)");
        assert!(k.is_finite() && k > 0.0, "valve rate must be positive");
        assert!(capacity.as_coulombs() > 0.0, "capacity must be positive");
        assert!(
            voltage_v.is_finite() && voltage_v > 0.0,
            "voltage must be positive"
        );
        let total = capacity.as_coulombs();
        Self {
            c,
            k,
            y1: c * total,
            y2: (1.0 - c) * total,
            rated: total,
            voltage: voltage_v,
        }
    }

    /// KiBaM parameters fitted to a chemistry preset: the conventional
    /// c = 0.625 split with a valve sized to the chemistry's rate
    /// tolerance (stiffer cells recover faster).
    pub fn from_chemistry(chem: Chemistry) -> Self {
        // Valve constants sized so the well limits kick in around each
        // chemistry's rated current (coin cells collapse at tens of mA,
        // Li-ion tolerates hundreds).
        let k = match chem {
            Chemistry::AlkalineAa => 5e-5,
            Chemistry::LiCoin => 5e-5,
            Chemistry::LiIon => 5e-4,
            Chemistry::NiMh => 2e-4,
        };
        Self::new(
            chem.rated_capacity(),
            chem.nominal_voltage().as_volts(),
            0.625,
            k,
        )
    }

    /// Remaining total charge.
    pub fn remaining_charge(&self) -> Charge {
        Charge::new((self.y1 + self.y2).max(0.0))
    }

    /// Charge immediately available to the load.
    pub fn available_charge(&self) -> Charge {
        Charge::new(self.y1.max(0.0))
    }

    /// State of charge over the rated capacity, in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        ((self.y1 + self.y2) / self.rated).clamp(0.0, 1.0)
    }

    /// `true` once the available well is exhausted (the cell's terminal
    /// voltage would collapse even though bound charge remains).
    pub fn is_cut_off(&self) -> bool {
        self.y1 <= 0.0
    }

    /// Draws `load` for `dt`, returning the energy actually delivered.
    /// Internally sub-steps at `0.1/k` for integration stability.
    ///
    /// # Panics
    ///
    /// Panics if `load` or `dt` is negative.
    pub fn drain(&mut self, load: Power, dt: TimeSpan) -> Energy {
        assert!(!load.is_negative(), "load must be non-negative");
        assert!(!dt.is_negative(), "time step must be non-negative");
        let i = load.as_watts() / self.voltage;
        let mut remaining = dt.as_seconds();
        let sub = (0.1 / self.k).clamp(1e-3, 60.0);
        let mut delivered = 0.0;
        while remaining > 0.0 {
            let step = remaining.min(sub);
            if self.y1 > 0.0 {
                let drawn = (i * step).min(self.y1);
                self.y1 -= drawn;
                delivered += drawn;
            }
            self.diffuse(step);
            remaining -= step;
        }
        Energy::new(delivered * self.voltage)
    }

    /// Lets the cell rest (recover) for `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn rest(&mut self, dt: TimeSpan) {
        assert!(!dt.is_negative(), "rest time must be non-negative");
        let mut remaining = dt.as_seconds();
        let sub = (0.1 / self.k).clamp(1e-3, 600.0);
        while remaining > 0.0 {
            let step = remaining.min(sub);
            self.diffuse(step);
            remaining -= step;
        }
    }

    /// One diffusion step between the wells.
    fn diffuse(&mut self, dt: f64) {
        let h1 = self.y1 / self.c;
        let h2 = self.y2 / (1.0 - self.c);
        let flow = self.k * (h2 - h1) * dt;
        // Clamp so neither well goes negative.
        let flow = flow.clamp(-self.y1.max(0.0), self.y2.max(0.0));
        self.y1 += flow;
        self.y2 -= flow;
    }

    /// Current corresponding to a power load at the terminal voltage.
    pub fn load_current(&self, load: Power) -> Current {
        Current::new(load.as_watts() / self.voltage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coin() -> KineticBattery {
        KineticBattery::from_chemistry(Chemistry::LiCoin)
    }

    #[test]
    fn fresh_cell_is_full_and_split() {
        let cell = coin();
        assert_eq!(cell.state_of_charge(), 1.0);
        let total = cell.remaining_charge().as_coulombs();
        assert!((cell.available_charge().as_coulombs() / total - 0.625).abs() < 1e-12);
        assert!(!cell.is_cut_off());
    }

    #[test]
    fn charge_is_conserved_through_diffusion() {
        let mut cell = coin();
        let before = cell.remaining_charge();
        cell.rest(TimeSpan::from_hours(5.0));
        let after = cell.remaining_charge();
        assert!((before.as_coulombs() - after.as_coulombs()).abs() < 1e-9);
    }

    #[test]
    fn drain_removes_exactly_the_delivered_charge() {
        let mut cell = coin();
        let before = cell.remaining_charge().as_coulombs();
        let e = cell.drain(Power::from_milliwatts(3.0), TimeSpan::from_minutes(30.0));
        let drawn = e.as_joules() / 3.0; // coulombs at 3 V
        let after = cell.remaining_charge().as_coulombs();
        assert!((before - after - drawn).abs() < 1e-9);
    }

    #[test]
    fn recovery_refills_the_available_well() {
        let mut cell = coin();
        // Pull hard enough to deplete the available well partially.
        let _ = cell.drain(Power::from_milliwatts(30.0), TimeSpan::from_hours(2.0));
        let avail_before = cell.available_charge().as_coulombs();
        cell.rest(TimeSpan::from_hours(4.0));
        let avail_after = cell.available_charge().as_coulombs();
        assert!(
            avail_after > avail_before,
            "rest must recover: {avail_before} -> {avail_after}"
        );
    }

    /// Extracts energy at `load` until the first brown-out, optionally
    /// resting between chunks (50% duty).
    fn extract_until_brownout(load: Power, pulsed: bool) -> Energy {
        let mut cell = coin();
        let chunk = TimeSpan::from_minutes(1.0);
        let mut total = Energy::ZERO;
        loop {
            let got = cell.drain(load, chunk);
            total += got;
            if pulsed {
                cell.rest(chunk);
            }
            if got.as_joules() < (load * chunk).as_joules() * 0.999 {
                return total;
            }
            assert!(total.as_joules() < 1e5, "never browned out");
        }
    }

    #[test]
    fn pulsed_load_outlasts_continuous_at_equal_rate() {
        // The KiBaM headline: the same instantaneous draw with rest
        // periods extracts more of the cell than drawing it continuously
        // (the available well recovers during rests).
        let heavy = Power::from_milliwatts(36.0); // 12 mA at 3 V
        let continuous = extract_until_brownout(heavy, false);
        let pulsed = extract_until_brownout(heavy, true);
        assert!(
            pulsed.as_joules() > continuous.as_joules() * 1.02,
            "pulsed {pulsed} must beat continuous {continuous}"
        );
    }

    #[test]
    fn brown_out_strands_bound_charge() {
        // A huge draw browns out (cannot deliver the requested energy)
        // while bound charge is still stranded behind the valve.
        let mut cell = coin();
        let load = Power::from_milliwatts(600.0);
        let chunk = TimeSpan::from_minutes(1.0);
        let requested = (load * chunk).as_joules();
        let mut chunks = 0;
        loop {
            let e = cell.drain(load, chunk);
            chunks += 1;
            if e.as_joules() < requested * 0.999 {
                break;
            }
            assert!(chunks < 100_000, "cell never browned out");
        }
        assert!(
            cell.state_of_charge() > 0.05,
            "stranded SOC {:.3}",
            cell.state_of_charge()
        );
    }

    #[test]
    #[should_panic(expected = "well split")]
    fn bad_split_rejected() {
        let _ = KineticBattery::new(Charge::from_milliamp_hours(100.0), 3.0, 1.0, 1e-3);
    }
}
