//! Ambient-condition samples and day-scale profiles driving harvesters.

use ami_units::{Illuminance, Temperature, TimeSpan};
use serde::{Deserialize, Serialize};

/// A snapshot of the ambient conditions around a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentSample {
    /// Illuminance at the device surface.
    pub illuminance: Illuminance,
    /// Free-air temperature.
    pub air_temperature: Temperature,
    /// Temperature of the surface the device is mounted on (thermoelectric
    /// harvesting exploits the gradient to `air_temperature`).
    pub surface_temperature: Temperature,
    /// Whether machine-class vibration is present.
    pub vibration_present: bool,
}

impl EnvironmentSample {
    /// A lit office: 500 lx, 23 °C air, 25 °C surface, no vibration.
    pub fn office() -> Self {
        Self {
            illuminance: Illuminance::from_lux(500.0),
            air_temperature: Temperature::from_celsius(23.0),
            surface_temperature: Temperature::from_celsius(25.0),
            vibration_present: false,
        }
    }

    /// A dark room: 0 lx, uniform 20 °C, no vibration.
    pub fn dark() -> Self {
        Self {
            illuminance: Illuminance::ZERO,
            air_temperature: Temperature::from_celsius(20.0),
            surface_temperature: Temperature::from_celsius(20.0),
            vibration_present: false,
        }
    }

    /// An office sample with the illuminance overridden.
    pub fn with_illuminance(illuminance: Illuminance) -> Self {
        Self {
            illuminance,
            ..Self::office()
        }
    }

    /// The thermal gradient available to a thermoelectric harvester, in
    /// kelvin (positive when the surface is hotter than the air).
    pub fn thermal_gradient_kelvin(&self) -> f64 {
        self.surface_temperature.as_kelvin() - self.air_temperature.as_kelvin()
    }
}

/// A repeating day-long ambient profile, piecewise-constant over segments.
///
/// # Example
///
/// ```
/// use ami_energy::EnvironmentProfile;
/// use ami_units::TimeSpan;
///
/// let day = EnvironmentProfile::office_day();
/// // Midnight is dark; mid-morning is lit.
/// assert_eq!(day.sample_at(TimeSpan::from_hours(2.0)).illuminance.as_lux(), 0.0);
/// assert!(day.sample_at(TimeSpan::from_hours(10.0)).illuminance.as_lux() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentProfile {
    /// `(segment start within the day, conditions)` — starts must ascend
    /// from zero.
    segments: Vec<(TimeSpan, EnvironmentSample)>,
    period: TimeSpan,
}

impl EnvironmentProfile {
    /// Builds a profile from ascending `(start, sample)` segments covering
    /// one `period`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, the first start is not zero, starts
    /// are not strictly ascending, or any start exceeds the period.
    pub fn new(segments: Vec<(TimeSpan, EnvironmentSample)>, period: TimeSpan) -> Self {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        assert_eq!(
            segments[0].0,
            TimeSpan::ZERO,
            "first segment must start at time zero"
        );
        for pair in segments.windows(2) {
            assert!(pair[0].0 < pair[1].0, "segment starts must strictly ascend");
        }
        assert!(
            segments.last().expect("non-empty").0 < period,
            "segment starts must precede the period"
        );
        Self { segments, period }
    }

    /// A constant profile (useful for steady-state analyses).
    pub fn constant(sample: EnvironmentSample) -> Self {
        Self::new(vec![(TimeSpan::ZERO, sample)], TimeSpan::from_days(1.0))
    }

    /// A typical office day: dark 0–8 h, lit 500 lx 8–18 h with a warm
    /// mounting surface, dim 100 lx 18–22 h, dark 22–24 h.
    pub fn office_day() -> Self {
        let lit = EnvironmentSample::office();
        let evening = EnvironmentSample::with_illuminance(Illuminance::from_lux(100.0));
        let dark = EnvironmentSample::dark();
        Self::new(
            vec![
                (TimeSpan::ZERO, dark),
                (TimeSpan::from_hours(8.0), lit),
                (TimeSpan::from_hours(18.0), evening),
                (TimeSpan::from_hours(22.0), dark),
            ],
            TimeSpan::from_days(1.0),
        )
    }

    /// The repetition period of the profile.
    pub fn period(&self) -> TimeSpan {
        self.period
    }

    /// The conditions at absolute time `t` (wraps modulo the period).
    pub fn sample_at(&self, t: TimeSpan) -> EnvironmentSample {
        let within = t.as_seconds().rem_euclid(self.period.as_seconds());
        let mut current = self.segments[0].1;
        for &(start, sample) in &self.segments {
            if within >= start.as_seconds() {
                current = sample;
            } else {
                break;
            }
        }
        current
    }

    /// Time-weighted mean illuminance over one period (for quick budget
    /// estimates without simulation).
    pub fn mean_illuminance(&self) -> Illuminance {
        let period = self.period.as_seconds();
        let mut acc = 0.0;
        for (idx, &(start, sample)) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(idx + 1)
                .map_or(period, |next| next.0.as_seconds());
            acc += sample.illuminance.as_lux() * (end - start.as_seconds());
        }
        Illuminance::from_lux(acc / period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_day_segments() {
        let day = EnvironmentProfile::office_day();
        assert_eq!(
            day.sample_at(TimeSpan::from_hours(0.5))
                .illuminance
                .as_lux(),
            0.0
        );
        assert_eq!(
            day.sample_at(TimeSpan::from_hours(12.0))
                .illuminance
                .as_lux(),
            500.0
        );
        assert_eq!(
            day.sample_at(TimeSpan::from_hours(19.0))
                .illuminance
                .as_lux(),
            100.0
        );
        assert_eq!(
            day.sample_at(TimeSpan::from_hours(23.0))
                .illuminance
                .as_lux(),
            0.0
        );
    }

    #[test]
    fn profile_wraps_modulo_period() {
        let day = EnvironmentProfile::office_day();
        let a = day.sample_at(TimeSpan::from_hours(10.0));
        let b = day.sample_at(TimeSpan::from_hours(34.0));
        assert_eq!(a, b);
    }

    #[test]
    fn mean_illuminance_weighted() {
        let day = EnvironmentProfile::office_day();
        // (8h·0 + 10h·500 + 4h·100 + 2h·0) / 24h = 5400/24 = 225 lx.
        assert!((day.mean_illuminance().as_lux() - 225.0).abs() < 1e-9);
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = EnvironmentProfile::constant(EnvironmentSample::office());
        for h in [0.0, 6.0, 12.0, 23.9] {
            assert_eq!(
                p.sample_at(TimeSpan::from_hours(h)),
                EnvironmentSample::office()
            );
        }
    }

    #[test]
    #[should_panic(expected = "start at time zero")]
    fn missing_zero_segment_rejected() {
        let _ = EnvironmentProfile::new(
            vec![(TimeSpan::from_hours(1.0), EnvironmentSample::dark())],
            TimeSpan::from_days(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn unsorted_segments_rejected() {
        let _ = EnvironmentProfile::new(
            vec![
                (TimeSpan::ZERO, EnvironmentSample::dark()),
                (TimeSpan::from_hours(5.0), EnvironmentSample::office()),
                (TimeSpan::from_hours(5.0), EnvironmentSample::dark()),
            ],
            TimeSpan::from_days(1.0),
        );
    }

    #[test]
    fn gradient_sign() {
        let office = EnvironmentSample::office();
        assert!(office.thermal_gradient_kelvin() > 0.0);
        assert_eq!(EnvironmentSample::dark().thermal_gradient_kelvin(), 0.0);
    }
}
