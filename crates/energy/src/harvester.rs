//! Ambient-energy harvesters for the autonomous (µW) device class,
//! and the mains supply for the static (W) class.
//!
//! Output-density calibration constants follow the early-2000s energy-
//! scavenging surveys (Roundy et al., Rabaey's PicoRadio project): indoor
//! light is the richest office-ambient source, vibration and thermal
//! gradients follow, and background RF is the poorest by far.

use crate::environment::EnvironmentSample;
use ami_units::{Area, Power, PowerDensity};
use serde::{Deserialize, Serialize};

/// Photovoltaic output density per kilolux of illuminance for an amorphous-Si
/// indoor cell (µW/cm² per klx). Survey anchor: ≈10 µW/cm² at 1 000 lx.
pub const PV_DENSITY_PER_KLX: f64 = 10.0;

/// Vibration-harvester density for machine-class excitation (µW/cm³);
/// we charge it per cm² of footprint with unit depth. Anchor: ≈100 µW/cm³.
pub const VIBRATION_DENSITY: f64 = 100.0;

/// Thermoelectric density per kelvin of gradient (µW/cm²/K). Anchor:
/// ≈20 µW/cm²·K for a 2003 thin-film thermopile near room temperature.
pub const THERMAL_DENSITY_PER_K: f64 = 20.0;

/// Ambient-RF density (µW/cm²) away from dedicated transmitters.
pub const RF_DENSITY: f64 = 0.1;

/// An ambient-energy harvester with a given collecting aperture.
///
/// # Example
///
/// ```
/// use ami_energy::{EnvironmentSample, Harvester};
/// use ami_units::Area;
///
/// let pv = Harvester::photovoltaic(Area::from_square_centimeters(4.0));
/// let office = EnvironmentSample::office();
/// // 4 cm² at 500 lx: ≈20 µW — exactly the µW-node regime.
/// let p = pv.power_output(&office);
/// assert!((p.as_microwatts() - 20.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Harvester {
    kind: HarvesterKind,
    aperture: Area,
}

/// The transduction principle of a [`Harvester`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HarvesterKind {
    /// Amorphous-Si photovoltaic cell tuned for indoor spectra.
    Photovoltaic,
    /// Inertial vibration harvester (electromagnetic or piezo).
    Vibration,
    /// Thermoelectric generator across an ambient temperature gradient.
    Thermoelectric,
    /// Rectenna scavenging background RF.
    RadioFrequency,
}

impl Harvester {
    /// Creates a harvester of the given kind and aperture.
    ///
    /// # Panics
    ///
    /// Panics if the aperture is negative or zero.
    pub fn new(kind: HarvesterKind, aperture: Area) -> Self {
        assert!(
            aperture.as_square_meters() > 0.0,
            "harvester aperture must be positive"
        );
        Self { kind, aperture }
    }

    /// Indoor photovoltaic cell of the given area.
    pub fn photovoltaic(aperture: Area) -> Self {
        Self::new(HarvesterKind::Photovoltaic, aperture)
    }

    /// Vibration harvester of the given footprint.
    pub fn vibration(aperture: Area) -> Self {
        Self::new(HarvesterKind::Vibration, aperture)
    }

    /// Thermoelectric generator of the given area.
    pub fn thermoelectric(aperture: Area) -> Self {
        Self::new(HarvesterKind::Thermoelectric, aperture)
    }

    /// RF scavenger of the given effective antenna area.
    pub fn radio_frequency(aperture: Area) -> Self {
        Self::new(HarvesterKind::RadioFrequency, aperture)
    }

    /// The transduction principle.
    pub fn kind(&self) -> HarvesterKind {
        self.kind
    }

    /// The collecting aperture.
    pub fn aperture(&self) -> Area {
        self.aperture
    }

    /// Output power density under the given ambient conditions.
    pub fn power_density(&self, env: &EnvironmentSample) -> PowerDensity {
        let uw_per_cm2 = match self.kind {
            HarvesterKind::Photovoltaic => PV_DENSITY_PER_KLX * env.illuminance.as_lux() / 1000.0,
            HarvesterKind::Vibration => {
                if env.vibration_present {
                    VIBRATION_DENSITY
                } else {
                    0.0
                }
            }
            HarvesterKind::Thermoelectric => {
                THERMAL_DENSITY_PER_K * env.thermal_gradient_kelvin().max(0.0)
            }
            HarvesterKind::RadioFrequency => RF_DENSITY,
        };
        PowerDensity::from_microwatts_per_square_centimeter(uw_per_cm2)
    }

    /// Output power under the given ambient conditions.
    pub fn power_output(&self, env: &EnvironmentSample) -> Power {
        self.power_density(env) * self.aperture
    }

    /// Output power under a brownout: the ambient source delivers only
    /// `scale` of its nominal power (lights dimmed, machinery idling).
    ///
    /// This is the supply-side hook for
    /// `ami_sim::fault::FaultEvent::Brownout` events, whose
    /// `harvest_scale` is the product of all active brownout scales.
    ///
    /// # Example
    ///
    /// ```
    /// use ami_energy::{EnvironmentSample, Harvester};
    /// use ami_units::Area;
    ///
    /// let pv = Harvester::photovoltaic(Area::from_square_centimeters(4.0));
    /// let office = EnvironmentSample::office();
    /// let dimmed = pv.power_output_derated(&office, 0.25);
    /// assert!((dimmed.as_watts() - 0.25 * pv.power_output(&office).as_watts()).abs() < 1e-18);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `[0, 1]`.
    pub fn power_output_derated(&self, env: &EnvironmentSample, scale: f64) -> Power {
        assert!(
            (0.0..=1.0).contains(&scale),
            "brownout scale must lie in [0, 1], got {scale}"
        );
        Power::from_watts(self.power_output(env).as_watts() * scale)
    }
}

/// The mains supply of the static (W) device class: unlimited energy but a
/// hard power (thermal) ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mains {
    ceiling: Power,
}

impl Mains {
    /// A mains supply with the given continuous-power ceiling.
    ///
    /// # Panics
    ///
    /// Panics if the ceiling is not strictly positive.
    pub fn new(ceiling: Power) -> Self {
        assert!(ceiling > Power::ZERO, "mains ceiling must be positive");
        Self { ceiling }
    }

    /// The continuous-power (thermal) ceiling.
    pub fn ceiling(&self) -> Power {
        self.ceiling
    }

    /// Whether a load fits under the ceiling.
    pub fn supports(&self, load: Power) -> bool {
        load <= self.ceiling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ami_units::{Illuminance, Temperature};

    #[test]
    fn pv_scales_linearly_with_light_and_area() {
        let cell = Harvester::photovoltaic(Area::from_square_centimeters(1.0));
        let dim = EnvironmentSample::with_illuminance(Illuminance::from_lux(100.0));
        let bright = EnvironmentSample::with_illuminance(Illuminance::from_lux(1000.0));
        let p_dim = cell.power_output(&dim).as_microwatts();
        let p_bright = cell.power_output(&bright).as_microwatts();
        assert!((p_bright / p_dim - 10.0).abs() < 1e-9);
        assert!((p_bright - 10.0).abs() < 1e-9);

        let big = Harvester::photovoltaic(Area::from_square_centimeters(4.0));
        assert!((big.power_output(&bright).as_microwatts() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn vibration_needs_excitation() {
        let h = Harvester::vibration(Area::from_square_centimeters(1.0));
        let mut env = EnvironmentSample::office();
        env.vibration_present = false;
        assert_eq!(h.power_output(&env), Power::ZERO);
        env.vibration_present = true;
        assert!((h.power_output(&env).as_microwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_needs_gradient() {
        let h = Harvester::thermoelectric(Area::from_square_centimeters(1.0));
        let mut env = EnvironmentSample::office();
        env.surface_temperature = env.air_temperature;
        assert_eq!(h.power_output(&env), Power::ZERO);
        env.surface_temperature = Temperature::from_celsius(env.air_temperature.as_celsius() + 5.0);
        assert!((h.power_output(&env).as_microwatts() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn rf_is_the_poorest_source() {
        let area = Area::from_square_centimeters(1.0);
        let office = EnvironmentSample::office();
        let rf = Harvester::radio_frequency(area).power_output(&office);
        let pv = Harvester::photovoltaic(area).power_output(&office);
        assert!(rf.as_microwatts() < pv.as_microwatts() / 10.0);
    }

    #[test]
    fn negative_gradient_clamps_to_zero() {
        let h = Harvester::thermoelectric(Area::from_square_centimeters(1.0));
        let mut env = EnvironmentSample::office();
        env.surface_temperature = Temperature::from_celsius(env.air_temperature.as_celsius() - 3.0);
        assert_eq!(h.power_output(&env), Power::ZERO);
    }

    #[test]
    #[should_panic(expected = "aperture")]
    fn zero_aperture_rejected() {
        let _ = Harvester::photovoltaic(Area::ZERO);
    }

    #[test]
    fn brownout_derating_scales_linearly() {
        let pv = Harvester::photovoltaic(Area::from_square_centimeters(4.0));
        let office = EnvironmentSample::office();
        let full = pv.power_output(&office);
        assert_eq!(pv.power_output_derated(&office, 1.0), full);
        assert_eq!(pv.power_output_derated(&office, 0.0), Power::ZERO);
        let half = pv.power_output_derated(&office, 0.5);
        assert!((half.as_watts() - full.as_watts() / 2.0).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "brownout scale")]
    fn brownout_scale_above_one_rejected() {
        let pv = Harvester::photovoltaic(Area::from_square_centimeters(1.0));
        let _ = pv.power_output_derated(&EnvironmentSample::office(), 1.1);
    }

    #[test]
    fn mains_ceiling() {
        let mains = Mains::new(Power::from_watts(10.0));
        assert!(mains.supports(Power::from_watts(9.9)));
        assert!(!mains.supports(Power::from_watts(10.1)));
    }
}
