//! Harvest-versus-load budgeting: the µW-node sustainability analysis.
//!
//! The keynote's autonomous node is viable only if, over every day, the
//! scavenged energy covers the consumed energy *and* the buffer never runs
//! dry in between. [`simulate_buffered_harvesting`] runs the day-scale
//! fixed-step simulation; [`SustainabilityReport`] summarizes outage and
//! margin — the quantities experiments F3 and A3 sweep.

use crate::environment::EnvironmentProfile;
use crate::harvester::Harvester;
use crate::pmu::Pmu;
use crate::storage::Storage;
use ami_units::{Energy, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Time series of buffer level and outage produced by the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferTrace {
    /// Sample instants.
    pub times: Vec<TimeSpan>,
    /// Buffer energy level at each instant.
    pub levels: Vec<Energy>,
    /// Whether the load was starved during the step ending at each instant.
    pub starved: Vec<bool>,
}

/// Aggregate sustainability result over the simulated horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SustainabilityReport {
    /// Mean harvested power at the buffer input (after PMU losses).
    pub mean_harvest: Power,
    /// Mean power the load demanded.
    pub mean_load: Power,
    /// Fraction of simulated time the load was starved, in `[0, 1]`.
    pub outage_fraction: f64,
    /// Minimum buffer level seen after the first period (steady state).
    pub min_level: Energy,
    /// `true` when the node runs forever: non-negative energy margin and
    /// zero steady-state outage.
    pub sustainable: bool,
}

impl SustainabilityReport {
    /// Power margin `mean_harvest − mean_load` (negative when doomed).
    pub fn margin(&self) -> Power {
        self.mean_harvest - self.mean_load
    }
}

/// Simulates a harvester feeding `storage` through `pmu` against a constant
/// `load`, over `horizon` with fixed `step`, starting from a full buffer.
///
/// Harvested energy passes the PMU (input side); the load draws from the
/// buffer directly (its own conversion is assumed part of `load`). A step
/// is *starved* if the buffer cannot cover the load's energy for that step.
///
/// Returns the report and the full trace.
///
/// # Panics
///
/// Panics if `step` or `horizon` is not positive, or `load` is negative.
pub fn simulate_buffered_harvesting(
    harvester: &Harvester,
    pmu: &Pmu,
    storage: &mut Storage,
    load: Power,
    profile: &EnvironmentProfile,
    horizon: TimeSpan,
    step: TimeSpan,
) -> (SustainabilityReport, BufferTrace) {
    let steps = (horizon.as_seconds() / step.as_seconds()).round() as usize;
    let mut trace = BufferTrace {
        times: Vec::with_capacity(steps),
        levels: Vec::with_capacity(steps),
        starved: Vec::with_capacity(steps),
    };
    let report = run_buffered_harvesting(
        harvester,
        pmu,
        storage,
        load,
        profile,
        horizon,
        step,
        |t, level, starved| {
            trace.times.push(t);
            trace.levels.push(level);
            trace.starved.push(starved);
        },
    );
    (report, trace)
}

/// [`simulate_buffered_harvesting`] without the per-step trace: same
/// arithmetic in the same order (the report is bit-identical), but no
/// sample vectors are built — the fast path for sweeps that only read
/// the [`SustainabilityReport`] (e.g. CS1's check-interval and storage
/// sweeps, which discard the trace).
///
/// # Panics
///
/// Panics if `step` or `horizon` is not positive, or `load` is negative.
pub fn simulate_buffered_harvesting_report(
    harvester: &Harvester,
    pmu: &Pmu,
    storage: &mut Storage,
    load: Power,
    profile: &EnvironmentProfile,
    horizon: TimeSpan,
    step: TimeSpan,
) -> SustainabilityReport {
    run_buffered_harvesting(
        harvester,
        pmu,
        storage,
        load,
        profile,
        horizon,
        step,
        |_, _, _| {},
    )
}

/// The shared fixed-step loop: every per-step sample goes through
/// `sink(time, level, starved)`, so retaining and discarding callers run
/// byte-for-byte the same float operations.
#[allow(clippy::too_many_arguments)]
fn run_buffered_harvesting(
    harvester: &Harvester,
    pmu: &Pmu,
    storage: &mut Storage,
    load: Power,
    profile: &EnvironmentProfile,
    horizon: TimeSpan,
    step: TimeSpan,
    mut sink: impl FnMut(TimeSpan, Energy, bool),
) -> SustainabilityReport {
    assert!(step > TimeSpan::ZERO, "step must be positive");
    assert!(horizon >= step, "horizon must cover at least one step");
    assert!(!load.is_negative(), "load must be non-negative");

    storage.deposit(storage.capacity()); // start full
    let steps = (horizon.as_seconds() / step.as_seconds()).round() as usize;
    let mut harvested = Energy::ZERO;
    let mut demanded = Energy::ZERO;
    let mut starved_steps = 0usize;
    let mut min_level_steady = Energy::new(f64::MAX);
    let first_period_steps = (profile.period().as_seconds() / step.as_seconds()).round() as usize;

    for k in 0..steps {
        let t = TimeSpan::new(step.as_seconds() * k as f64);
        let env = profile.sample_at(t);
        let harvest_in = pmu.output_power_from(harvester.power_output(&env));
        harvested += harvest_in * step;
        storage.deposit(harvest_in * step);

        let need = load * step;
        demanded += need;
        let got = storage.withdraw(need);
        let starved = got < need * 0.999_999;
        if starved {
            starved_steps += 1;
        }
        storage.tick_self_discharge(step);

        if k >= first_period_steps {
            min_level_steady = min_level_steady.min(storage.level());
        }
        sink(t + step, storage.level(), starved);
    }

    let sim_time = TimeSpan::new(step.as_seconds() * steps as f64);
    let outage = starved_steps as f64 / steps as f64;
    if min_level_steady.as_joules() == f64::MAX {
        min_level_steady = storage.level();
    }
    SustainabilityReport {
        mean_harvest: harvested / sim_time,
        mean_load: demanded / sim_time,
        outage_fraction: outage,
        min_level: min_level_steady,
        sustainable: outage == 0.0 && harvested.as_joules() >= demanded.as_joules() * 0.999,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::EnvironmentSample;
    use ami_units::{Area, Capacitance, Voltage};

    fn pv4() -> Harvester {
        Harvester::photovoltaic(Area::from_square_centimeters(4.0))
    }

    fn big_buffer() -> Storage {
        Storage::new(Energy::from_joules(5.0), Power::from_nanowatts(10.0))
    }

    #[test]
    fn tiny_load_is_sustainable_in_an_office() {
        let mut storage = big_buffer();
        let (report, trace) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::ideal(),
            &mut storage,
            Power::from_microwatts(2.0),
            &EnvironmentProfile::office_day(),
            TimeSpan::from_days(3.0),
            TimeSpan::from_minutes(5.0),
        );
        assert!(
            report.sustainable,
            "2 µW must survive on 4 cm² PV: {report:?}"
        );
        assert_eq!(report.outage_fraction, 0.0);
        assert!(report.margin() > Power::ZERO);
        assert!(!trace.levels.is_empty());
    }

    #[test]
    fn heavy_load_starves() {
        let mut storage = Storage::new(Energy::from_millijoules(100.0), Power::ZERO);
        let (report, _) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::ideal(),
            &mut storage,
            Power::from_milliwatts(5.0),
            &EnvironmentProfile::office_day(),
            TimeSpan::from_days(1.0),
            TimeSpan::from_minutes(5.0),
        );
        assert!(!report.sustainable);
        assert!(report.outage_fraction > 0.5);
        assert!(report.margin().is_negative());
    }

    #[test]
    fn mean_harvest_matches_profile_mean() {
        // Constant illuminance: mean harvest equals instantaneous harvest.
        let profile = EnvironmentProfile::constant(EnvironmentSample::office());
        let mut storage = big_buffer();
        let (report, _) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::ideal(),
            &mut storage,
            Power::from_microwatts(1.0),
            &profile,
            TimeSpan::from_days(1.0),
            TimeSpan::from_minutes(10.0),
        );
        let expected = pv4().power_output(&EnvironmentSample::office());
        assert!((report.mean_harvest.as_microwatts() - expected.as_microwatts()).abs() < 1e-6);
    }

    #[test]
    fn pmu_losses_reduce_harvest() {
        let profile = EnvironmentProfile::constant(EnvironmentSample::office());
        let mut a = big_buffer();
        let mut b = big_buffer();
        let load = Power::from_microwatts(1.0);
        let horizon = TimeSpan::from_hours(12.0);
        let step = TimeSpan::from_minutes(10.0);
        let (ideal, _) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::ideal(),
            &mut a,
            load,
            &profile,
            horizon,
            step,
        );
        let (lossy, _) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::micro_power(),
            &mut b,
            load,
            &profile,
            horizon,
            step,
        );
        assert!(lossy.mean_harvest < ideal.mean_harvest);
    }

    #[test]
    fn report_only_variant_is_bit_identical() {
        // The trace-retaining and report-only paths share one loop; the
        // reports must match to the last bit, not merely approximately.
        let run = |report_only: bool| {
            let mut storage = big_buffer();
            let load = Power::from_microwatts(3.0);
            let profile = EnvironmentProfile::office_day();
            let horizon = TimeSpan::from_days(3.0);
            let step = TimeSpan::from_minutes(5.0);
            if report_only {
                simulate_buffered_harvesting_report(
                    &pv4(),
                    &Pmu::micro_power(),
                    &mut storage,
                    load,
                    &profile,
                    horizon,
                    step,
                )
            } else {
                simulate_buffered_harvesting(
                    &pv4(),
                    &Pmu::micro_power(),
                    &mut storage,
                    load,
                    &profile,
                    horizon,
                    step,
                )
                .0
            }
        };
        let with_trace = run(false);
        let report_only = run(true);
        assert_eq!(with_trace, report_only);
        assert_eq!(
            with_trace.mean_harvest.as_watts().to_bits(),
            report_only.mean_harvest.as_watts().to_bits()
        );
        assert_eq!(
            with_trace.min_level.as_joules().to_bits(),
            report_only.min_level.as_joules().to_bits()
        );
    }

    #[test]
    fn storage_too_small_fails_overnight_even_with_daytime_surplus() {
        // A3's core effect: plenty of average power, not enough buffer.
        let mut tiny = Storage::supercapacitor(
            Capacitance::from_millifarads(10.0),
            Voltage::from_volts(2.5),
        );
        let (report, _) = simulate_buffered_harvesting(
            &pv4(),
            &Pmu::ideal(),
            &mut tiny,
            Power::from_microwatts(4.0),
            &EnvironmentProfile::office_day(),
            TimeSpan::from_days(2.0),
            TimeSpan::from_minutes(5.0),
        );
        // Daytime harvest (20 µW for 10 h) beats the 4 µW average load,
        // but ~0.03 J of buffer cannot bridge a 14-hour night at 4 µW (0.2 J).
        assert!(report.margin() > Power::ZERO);
        assert!(report.outage_fraction > 0.0);
        assert!(!report.sustainable);
    }
}
