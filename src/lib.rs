//! `ambience` — facade crate re-exporting the whole toolkit.
//!
//! See the workspace README and DESIGN.md for the architecture. Each
//! sub-crate is re-exported under a short module name:
//!
//! ```
//! use ambience::units::Power;
//!
//! let p = Power::from_milliwatts(3.0);
//! assert_eq!(p.as_microwatts(), 3000.0);
//! ```

pub use ami_arch as arch;
pub use ami_core as core;
pub use ami_dvs as dvs;
pub use ami_energy as energy;
pub use ami_net as net;
pub use ami_power as power;
pub use ami_radio as radio;
pub use ami_sim as sim;
pub use ami_tech as tech;
pub use ami_units as units;
