//! Golden-output smoke tests: the headline table rows of T1 and F2 are
//! pinned to checked-in strings, via the same library calls the
//! experiment binaries make.
//!
//! These rows are pure functions of the checked-in model constants, so a
//! mismatch means a model change silently rewrote a published number —
//! exactly what EXPERIMENTS.md must not do unnoticed. When a change is
//! intentional, regenerate the goldens with
//! `cargo run -p ami-experiments --bin expt_t1_device_classes` (and F2)
//! and update both the strings here and EXPERIMENTS.md together.

use ambience::arch::{ArchitectureClass, Processor};
use ambience::core::class_table::class_table_text;
use ambience::tech::{intrinsic_efficiency, Roadmap};

/// T1: the three device-class rows, exactly as the binary prints them.
#[test]
fn t1_class_table_headline_rows_match_golden() {
    let table = class_table_text();
    let golden_rows = [
        "µW-node                30 µW  energy scavenging (light, vibration, heat)          17 MOPS          40 m   unlimited",
        "mW-node               100 mW  battery                                        55556 MOPS         598 m        34 h",
        "W-node                  10 W  mains                                        5555556 MOPS        2777 m   unlimited",
    ];
    for golden in golden_rows {
        assert!(
            table.lines().any(|line| line == golden),
            "missing golden T1 row:\n  expected: {golden:?}\n  table:\n{table}"
        );
    }
    // Exactly one header plus the three class rows.
    assert_eq!(table.lines().count(), 4, "table:\n{table}");
}

/// F2, first table: intrinsic (ASIC-bound) efficiency per roadmap node,
/// formatted with the binary's precision.
#[test]
fn f2_intrinsic_efficiency_rows_match_golden() {
    let golden_rows = [
        "250nm 2.50 64.0 15.63",
        "180nm 1.80 176.4 5.67",
        "130nm 1.20 555.6 1.80",
        "90nm 1.00 1142.9 0.88",
        "65nm 0.90 1975.3 0.51",
    ];
    let roadmap = Roadmap::full_2003();
    let rows: Vec<String> = roadmap
        .nodes()
        .iter()
        .map(|node| {
            let ice = intrinsic_efficiency(node, node.vdd_nominal());
            format!(
                "{} {:.2} {:.1} {:.2}",
                node.name(),
                node.vdd_nominal().as_volts(),
                ice.as_mops_per_milliwatt(),
                ice.to_energy_per_op().as_picojoules_per_op()
            )
        })
        .collect();
    assert_eq!(rows, golden_rows);
}

/// F2, last section: the CPU-over-ASIC flexibility gap is 400x at every
/// node of the 2003 roadmap.
#[test]
fn f2_flexibility_gap_matches_golden() {
    for node in Roadmap::full_2003().nodes() {
        let asic = Processor::new("a", ArchitectureClass::Asic, node.clone());
        let cpu = Processor::new("c", ArchitectureClass::Cpu, node.clone());
        let gap = cpu.energy_per_op_nominal().as_joules_per_op()
            / asic.energy_per_op_nominal().as_joules_per_op();
        assert_eq!(format!("{gap:.0}x"), "400x", "node {}", node.name());
    }
}
