//! Shape assertions for the extension experiments (F8–F12, A4–A6),
//! mirroring `experiment_shapes.rs` for the core set.

use ambience::arch::{ArchitectureClass, Interconnect, Processor};
use ambience::core::case_studies::cs1::Cs1Config;
use ambience::core::design_space::{cs1_frontier, explore_cs1};
use ambience::dvs::{
    simulate_taskset, simulate_taskset_with_levels, DvsPolicy, FrequencyLadder, TaskSet,
};
use ambience::net::{
    analyze_aggregation, simulate_clustered, simulate_gathering, ClusterConfig, NetworkConfig,
    RoutingStrategy, Topology,
};
use ambience::radio::{
    analyze_reliability, FecScheme, Packet, RadioEnergyModel, SharedChannel, StopAndWaitArq,
};
use ambience::tech::{intrinsic_energy_per_op, TechnologyNode, VariationModel};
use ambience::units::{Area, DataVolume, Energy, Frequency, Length, Power, Temperature, TimeSpan};

/// F8: the FEC winner ladder — uncoded on clean channels, Hamming in the
/// middle, repetition on dirty ones.
#[test]
fn f8_fec_crossover_ladder() {
    let radio = RadioEnergyModel::short_range_2003();
    let packet = Packet::sensor_report();
    let arq = StopAndWaitArq::new(8);
    let d = Length::from_meters(20.0);
    let winner = |ber: f64| {
        FecScheme::all()
            .into_iter()
            .min_by(|&a, &b| {
                let ea =
                    analyze_reliability(&packet, a, arq, ber, d, &radio).energy_per_delivered_bit;
                let eb =
                    analyze_reliability(&packet, b, arq, ber, d, &radio).energy_per_delivered_bit;
                ea.total_cmp(&eb)
            })
            .unwrap()
    };
    assert_eq!(winner(1e-6), FecScheme::None);
    assert_eq!(winner(1e-2), FecScheme::Hamming74);
    assert_eq!(winner(3e-2), FecScheme::Repetition3);
}

/// F9: sensor-rate density is thousands; audio-rate density is < 1.
#[test]
fn f9_density_split() {
    let sensor = SharedChannel::sensor_default();
    assert!(sensor.max_nodes(TimeSpan::from_minutes(5.0)) > 5_000.0);
    let audio = SharedChannel::new(
        ambience::units::DataRate::from_kilobits_per_second(50.0),
        Packet::audio_frame(),
    );
    assert!(audio.max_nodes(TimeSpan::from_millis(24.0)) < 1.0);
}

/// F10: the wire/op ratio crosses 1.0 within the 2003 roadmap window.
#[test]
fn f10_wire_op_crossover() {
    let ratio = |node: &TechnologyNode| {
        let fabric = Interconnect::typical_soc(node.clone());
        fabric
            .wire_energy_per_bit(Length::from_millimeters(10.0))
            .as_joules()
            / intrinsic_energy_per_op(node, node.vdd_nominal()).as_joules_per_op()
    };
    assert!(ratio(&TechnologyNode::n250()) < 1.0);
    assert!(ratio(&TechnologyNode::n65()) > 1.0);
}

/// F11: clustering balances residual energy and extends first death.
#[test]
fn f11_clustering_beats_tree_on_lifetime() {
    let topo = Topology::grid(5, Length::from_meters(30.0));
    let radio = RadioEnergyModel::short_range_2003();
    let budget = Energy::from_joules(1.0);
    let mut tree_config = NetworkConfig::sensor_default();
    tree_config.idle_power = Power::ZERO;
    tree_config.node_energy = budget;
    let tree = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &tree_config, 20_000);
    let clustered = simulate_clustered(&topo, &radio, &ClusterConfig::classic(), budget, 20_000, 7);
    let tree_death = tree.first_death_round.expect("tree must die");
    let cluster_death = clustered.first_death_round.expect("cluster must die");
    assert!(
        cluster_death > tree_death,
        "clustering must extend lifetime: {cluster_death} vs {tree_death}"
    );
}

/// F12: the design-space frontier is monotone (patience substitutes for
/// area).
#[test]
fn f12_frontier_monotone() {
    let areas: Vec<Area> = [2.0, 8.0, 32.0]
        .iter()
        .map(|&c| Area::from_square_centimeters(c))
        .collect();
    let intervals: Vec<TimeSpan> = [0.25, 2.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let cells = explore_cs1(&Cs1Config::default(), &areas, &intervals);
    let frontier = cs1_frontier(&cells);
    let mut last: Option<Area> = None;
    for (_, area) in frontier {
        if let (Some(prev), Some(current)) = (last, area) {
            assert!(current <= prev, "frontier must tighten with patience");
        }
        if area.is_some() {
            last = area;
        }
    }
}

/// A4: ladder coarseness costs energy monotonically, deadlines held.
#[test]
fn a4_ladder_ordering() {
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
    let tasks = TaskSet::personal_audio();
    let horizon = TimeSpan::from_seconds(5.0);
    let cont = simulate_taskset(&dsp, &tasks, DvsPolicy::WorstCaseStretch, horizon, 1);
    let four = simulate_taskset_with_levels(
        &dsp,
        &tasks,
        DvsPolicy::WorstCaseStretch,
        &FrequencyLadder::four_point(),
        horizon,
        1,
    );
    let two = simulate_taskset_with_levels(
        &dsp,
        &tasks,
        DvsPolicy::WorstCaseStretch,
        &FrequencyLadder::two_point(),
        horizon,
        1,
    );
    assert_eq!(four.deadline_misses + two.deadline_misses, 0);
    assert!(cont.busy_energy <= four.busy_energy);
    assert!(four.busy_energy <= two.busy_energy);
}

/// A5: fusion monotonically reduces gathering energy.
#[test]
fn a5_fusion_monotone() {
    let topo = Topology::grid(5, Length::from_meters(30.0));
    let radio = RadioEnergyModel::short_range_2003();
    let energy = |fusion: f64| {
        analyze_aggregation(
            &topo,
            &radio,
            Length::from_meters(45.0),
            DataVolume::from_bytes(16.0),
            DataVolume::from_bits(112.0),
            fusion,
        )
        .round_energy
    };
    let mut last = Energy::from_joules(f64::MAX / 2.0);
    for fusion in [1.0, 0.5, 0.0] {
        let e = energy(fusion);
        assert!(e <= last);
        last = e;
    }
}

/// A6: joint yield collapses as constraints tighten, and fast dies leak.
#[test]
fn a6_yield_collapse() {
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let yield_at = |f_ghz: f64, p_mw: f64| {
        model.parametric_yield(
            &node,
            100e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(f_ghz),
            Power::from_milliwatts(p_mw),
            2000,
            7,
        )
    };
    let loose = yield_at(0.9, 100.0);
    let tight = yield_at(1.12, 5.0);
    assert!(loose > 0.95);
    assert!(tight < 0.5);
    assert!(tight < loose);
}
