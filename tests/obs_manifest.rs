//! Manifest acceptance: the checked-in golden F3 manifest must match a
//! fresh rebuild byte-for-byte, and the ledger behind it must reproduce
//! the keynote's headline split — the radio's channel checks eating
//! ~82 % of the CS1 node's budget — with every category accounted for.

use ambience::core::case_studies::cs1::{cs1_energy_ledger, Cs1Config};
use ambience::sim::obs::EnergyCategory;
use ambience::units::TimeSpan;
use ami_experiments::manifests::{
    f13_faulted_manifest, f13_manifest, f3_manifest, t3_manifest, F13_FAULT_SPEC,
};

/// The golden manifest frozen in the repo; CI also diffs the binary's
/// `AMBIENCE_MANIFEST` output against this same file.
const GOLDEN_F3: &str = include_str!("../crates/experiments/golden/f3_manifest.json");

/// The frozen faulted-F13 run: the same grid and seed as F13 under the
/// [`F13_FAULT_SPEC`] mix. CI regenerates it by running the F13 binary
/// with `AMBIENCE_FAULTS` set to that spec and diffing.
const GOLDEN_F13_FAULTED: &str =
    include_str!("../crates/experiments/golden/f13_faulted_manifest.json");

#[test]
fn f3_manifest_matches_the_checked_in_golden() {
    assert_eq!(
        f3_manifest().to_json(),
        GOLDEN_F3,
        "f3_manifest() drifted from crates/experiments/golden/f3_manifest.json; \
         if the change is intentional, regenerate the golden with \
         AMBIENCE_MANIFEST=crates/experiments/golden/f3_manifest.json \
         cargo run -p ami-experiments --bin expt_f3_cs1_duty_cycle"
    );
}

#[test]
fn f3_ledger_reproduces_the_radio_dominance_figure() {
    let ledger = cs1_energy_ledger(&Cs1Config::default(), TimeSpan::from_days(3.0));
    // The keynote's figure: idle listening (LPL channel checks) takes
    // ~82 % of the budget on the default duty-cycled node.
    let idle = ledger.fraction(EnergyCategory::Idle);
    assert!(
        (0.80..0.85).contains(&idle),
        "idle fraction {idle} outside the 82% band"
    );
    // The categories partition the total: attribution loses nothing.
    let by_category: f64 = EnergyCategory::ALL
        .into_iter()
        .map(|c| ledger.category_total(c).as_joules())
        .sum();
    let total = ledger.total().as_joules();
    assert!(
        (by_category - total).abs() <= 1e-9 * total,
        "categories sum to {by_category}, ledger total {total}"
    );
}

#[test]
fn f13_faulted_manifest_matches_the_checked_in_golden() {
    assert_eq!(
        f13_faulted_manifest().to_json(),
        GOLDEN_F13_FAULTED,
        "f13_faulted_manifest() drifted from \
         crates/experiments/golden/f13_faulted_manifest.json; if the change \
         is intentional, regenerate the golden with \
         AMBIENCE_FAULTS='{F13_FAULT_SPEC}' \
         AMBIENCE_MANIFEST=crates/experiments/golden/f13_faulted_manifest.json \
         cargo run -p ami-experiments --bin expt_f13_lossy_network"
    );
}

#[test]
fn f13_faulted_manifest_attributes_fault_losses_separately() {
    let json = f13_faulted_manifest().to_json();
    assert!(json.contains("\"experiment\": \"F13-faulted\""));
    assert!(json.contains("\"fault_model\":"));
    // Channel and fault losses are separate causes in the counter tree.
    assert!(json.contains("\"dropped\":{\"channel\":"));
    assert!(json.contains("\"fault\":"));
}

#[test]
fn manifests_render_every_experiment_without_panicking() {
    for (manifest, tag) in [
        (f3_manifest(), "\"experiment\": \"F3\""),
        (f13_manifest(), "\"experiment\": \"F13\""),
        (f13_faulted_manifest(), "\"experiment\": \"F13-faulted\""),
        (t3_manifest(), "\"experiment\": \"T3\""),
    ] {
        let json = manifest.to_json();
        assert!(json.contains(tag));
        assert!(json.ends_with("}\n"));
    }
}
