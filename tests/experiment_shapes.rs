//! The reproduction contract: every figure/table of EXPERIMENTS.md has its
//! headline *shape* asserted here, so `cargo test` guards the scientific
//! conclusions, not just the code.

use ambience::arch::{converter::FOM_2003, Adc, ArchitectureClass, Processor};
use ambience::core::case_studies::cs1::{run_cs1, sweep_check_interval, sweep_storage, Cs1Config};
use ambience::core::case_studies::cs2::{run_cs2, Cs2Config};
use ambience::core::case_studies::cs3::{best_format, Cs3Config};
use ambience::core::class_characteristics;
use ambience::dvs::DvsPolicy;
use ambience::energy::{Battery, BatteryModel, Chemistry};
use ambience::net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
use ambience::power::{portfolio_2003, PowerClass};
use ambience::radio::{
    CsmaMac, MacProtocol, PreambleSamplingMac, RadioPowerStates, TdmaMac, TrafficLoad,
};
use ambience::tech::{intrinsic_efficiency, DesignPoint, LeakageModel, Roadmap};
use ambience::units::{Capacitance, Energy, Frequency, Length, Power, Temperature, TimeSpan};

/// F1: the three classes are populated and decades apart.
#[test]
fn f1_classes_are_decades_apart() {
    let graph = portfolio_2003();
    let max_power = |class: PowerClass| {
        graph
            .in_class(class)
            .iter()
            .map(|p| p.power().as_watts())
            .fold(0.0, f64::max)
    };
    assert!(max_power(PowerClass::MicroWatt) < 1e-3);
    assert!(max_power(PowerClass::MilliWatt) < 1.0);
    assert!(max_power(PowerClass::Watt) >= 1.0);
}

/// T1: compute capability per class spans MOPS → 100 GOPS.
#[test]
fn t1_capability_ladder() {
    let rows = class_characteristics();
    assert!(rows[0].compute_capability.as_mops() >= 1.0);
    assert!(rows[2].compute_capability.as_gops() >= 100.0);
}

/// F2: ICE improves ≥8x across the roadmap; the CPU/ASIC gap stays 2–3
/// decades at every node.
#[test]
fn f2_scaling_and_flexibility_gap() {
    let roadmap = Roadmap::full_2003();
    let first = roadmap.nodes().first().unwrap();
    let last = roadmap.nodes().last().unwrap();
    let gain = intrinsic_efficiency(last, last.vdd_nominal()).as_ops_per_joule()
        / intrinsic_efficiency(first, first.vdd_nominal()).as_ops_per_joule();
    assert!(gain > 8.0, "roadmap ICE gain {gain:.1}");
    for node in roadmap.nodes() {
        let asic = Processor::new("a", ArchitectureClass::Asic, node.clone());
        let cpu = Processor::new("c", ArchitectureClass::Cpu, node.clone());
        let gap = cpu.energy_per_op_nominal().as_joules_per_op()
            / asic.energy_per_op_nominal().as_joules_per_op();
        assert!((100.0..=1000.0).contains(&gap), "{}: {gap:.0}", node.name());
    }
}

/// F3: the sustainable region exists and opens below ~1% effective duty.
#[test]
fn f3_sustainable_region() {
    let base = Cs1Config::default();
    let rows = sweep_check_interval(
        &base,
        &[
            TimeSpan::from_millis(20.0),
            TimeSpan::from_seconds(2.0),
            TimeSpan::from_seconds(8.0),
        ],
    );
    assert!(!rows[0].3 && rows[1].3 && rows[2].3);
    // The default operating point is µW-class with positive margin.
    let result = run_cs1(&base);
    assert!(result.budget.total().as_microwatts() < 100.0);
    assert!(result.mac.effective_duty < 0.01);
}

/// T2: the analog front-end dominates the CS2 budget at every node.
#[test]
fn t2_analog_floor() {
    for node in Roadmap::full_2003().nodes() {
        let result = run_cs2(&Cs2Config {
            node: node.clone(),
            ..Cs2Config::default()
        });
        assert_eq!(
            result.budget.dominant().unwrap().name,
            "RF tuner",
            "at {}",
            node.name()
        );
    }
}

/// F4: policy ordering none ≥ static ≥ stretch ≥ oracle on DSP energy,
/// and the 65 nm leakage pushback (DSP power rises again vs 130 nm).
#[test]
fn f4_dvs_ordering_and_leakage_pushback() {
    let at = |node, policy| {
        run_cs2(&Cs2Config {
            node,
            policy,
            ..Cs2Config::default()
        })
        .dsp
        .average_power()
        .as_watts()
    };
    use ambience::tech::TechnologyNode;
    let none = at(TechnologyNode::n130(), DvsPolicy::None);
    let stat = at(TechnologyNode::n130(), DvsPolicy::UtilizationStatic);
    let oracle = at(TechnologyNode::n130(), DvsPolicy::Clairvoyant);
    assert!(none > stat && stat >= oracle);
    let p130 = at(TechnologyNode::n130(), DvsPolicy::WorstCaseStretch);
    let p65 = at(TechnologyNode::n65(), DvsPolicy::WorstCaseStretch);
    assert!(
        p65 > p130,
        "65 nm leakage must push DSP power back up: {p65} vs {p130}"
    );
}

/// F5: ASIC sustains SD in the ceiling; CPU does not; a programmable
/// class crosses over in between.
#[test]
fn f5_crossover() {
    use ambience::arch::kernel::VideoFormat;
    let config = Cs3Config::default();
    assert_eq!(
        best_format(&config, ArchitectureClass::Asic),
        Some(VideoFormat::Sd)
    );
    assert_ne!(
        best_format(&config, ArchitectureClass::Cpu),
        Some(VideoFormat::Sd)
    );
    let dsp = best_format(&config, ArchitectureClass::Dsp);
    assert!(dsp.is_some() && dsp != Some(VideoFormat::Sd));
}

/// F6: multi-hop beats direct beyond the radio crossover and the saving
/// grows with network radius.
#[test]
fn f6_multihop_saving_grows() {
    let mut config = NetworkConfig::sensor_default();
    config.node_energy = Energy::from_joules(50.0);
    // Zero the (routing-independent) idle baseline to expose the
    // communication-energy difference the crossover is about.
    config.idle_power = Power::ZERO;
    let saving = |side: usize| {
        let topo = Topology::grid(side, Length::from_meters(30.0));
        let direct = simulate_gathering(&topo, RoutingStrategy::DirectToSink, &config, 200);
        let multi = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
        direct.total_energy.as_joules() / multi.total_energy.as_joules()
    };
    let small = saving(3);
    let large = saving(6);
    assert!(
        large > small,
        "saving must grow with radius: {large:.2} vs {small:.2}"
    );
    assert!(large > 1.2);
}

/// T3: CSMA is milliwatts; duty-cycled MACs are 2+ orders below it.
#[test]
fn t3_mac_orders_of_magnitude() {
    let radio = RadioPowerStates::sensor_default();
    let traffic = TrafficLoad::periodic_report(TimeSpan::from_minutes(5.0));
    let csma = CsmaMac.analyze(&radio, &traffic).average_power;
    let tdma = TdmaMac::new(TimeSpan::from_seconds(1.0))
        .analyze(&radio, &traffic)
        .average_power;
    let lpl = PreambleSamplingMac::new(TimeSpan::from_seconds(1.0))
        .analyze(&radio, &traffic)
        .average_power;
    assert!(csma.as_milliwatts() > 10.0);
    assert!(csma.as_watts() / tdma.as_watts() > 100.0);
    assert!(csma.as_watts() / lpl.as_watts() > 100.0);
}

/// F7: the FoM law spans the nW→W range across the resolution/rate grid.
#[test]
fn f7_adc_spans_classes() {
    let sensor = Adc::new(12.0, Frequency::from_hertz(100.0), FOM_2003);
    let wlan = Adc::new(8.0, Frequency::from_megahertz(100.0), FOM_2003);
    assert_eq!(PowerClass::of(sensor.power()), PowerClass::MicroWatt);
    assert!(wlan.power().as_milliwatts() > 10.0);
}

/// A1: disabling leakage flips the scaled-node conclusion for ambient
/// (low-activity) workloads.
#[test]
fn a1_leakage_flips_conclusion() {
    let ambient = DesignPoint::new(
        500e3,
        0.005,
        Frequency::from_megahertz(2.0),
        Temperature::ROOM,
    );
    let with = Roadmap::full_2003().project(&ambient);
    let without = Roadmap::new(
        Roadmap::full_2003()
            .nodes()
            .iter()
            .cloned()
            .map(|n| n.with_leakage_model(LeakageModel::Off))
            .collect(),
    )
    .project(&ambient);
    // Without leakage, 65 nm is the best node; with it, it is the worst.
    let best_without = without
        .iter()
        .min_by(|a, b| a.total().total_cmp(&b.total()))
        .unwrap();
    let best_with = with
        .iter()
        .min_by(|a, b| a.total().total_cmp(&b.total()))
        .unwrap();
    assert_eq!(best_without.node, "65nm");
    assert_ne!(best_with.node, "65nm");
    assert!(with[4].leakage_fraction() > 0.5);
}

/// A2: battery models agree below the rated current, diverge above it.
#[test]
fn a2_battery_model_divergence() {
    let light = Power::from_milliwatts(30.0); // 20 mA on AA, below 50 mA rating
    let heavy = Power::from_watts(1.5); // 1 A, 20x the rating
    let life = |model, load| {
        Battery::new(Chemistry::AlkalineAa, model)
            .lifetime_under(load)
            .as_hours()
    };
    let light_spread = life(BatteryModel::Peukert, light) / life(BatteryModel::Linear, light);
    let heavy_spread = life(BatteryModel::Peukert, heavy) / life(BatteryModel::Linear, heavy);
    assert!(heavy_spread < 0.5, "Peukert must punish 1 A draws");
    assert!(
        light_spread > 0.9,
        "models should broadly agree at light loads (got {light_spread:.2})"
    );
}

/// A3: the outage curve has a knee — undersized buffers starve nightly,
/// adequately sized ones never do.
#[test]
fn a3_storage_knee() {
    let rows = sweep_storage(
        &Cs1Config::default(),
        &[
            Capacitance::from_millifarads(10.0),
            Capacitance::from_millifarads(2000.0),
        ],
    );
    assert!(rows[0].1 > 0.1);
    assert_eq!(rows[1].1, 0.0);
}

/// F15: the city-scale machinery — the spatial-grid CSR reproduces the
/// all-pairs scan bit for bit, and under the frozen churn mix every
/// transition after round 0 is an incremental repair whose run is
/// report-identical to the retired full-rebuild oracle.
#[test]
fn f15_city_scale_repairs_match_the_oracle() {
    use ambience::net::routing::{
        reset_route_build_count, reset_route_repair_count, route_build_count, route_repair_count,
        set_route_repair_enabled,
    };
    use ambience::net::{simulate_gathering_faulted, CsrAdjacency};
    use ambience::sim::fault::FaultSpec;

    let n = 400;
    let topo = Topology::random(n, Length::from_meters(25.0 * (n as f64).sqrt()), 2003);
    let config = NetworkConfig::sensor_default();

    let positions: Vec<_> = topo.ids().map(|id| topo.position(id)).collect();
    assert_eq!(
        CsrAdjacency::build(&positions, config.max_hop),
        CsrAdjacency::build_scan(&positions, config.max_hop),
        "grid CSR must equal the scan oracle"
    );

    let faults = FaultSpec::parse("death=0.1,outage=0.2:10,link=0.1:8")
        .unwrap()
        .schedule_for(2003, n, 30);
    let was_enabled = set_route_repair_enabled(false);
    let oracle =
        simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 30, &faults);
    set_route_repair_enabled(true);
    reset_route_build_count();
    reset_route_repair_count();
    let repaired =
        simulate_gathering_faulted(&topo, RoutingStrategy::MinimumEnergy, &config, 30, &faults);
    set_route_repair_enabled(was_enabled);
    assert_eq!(repaired, oracle, "repairs must not change the physics");
    assert_eq!(route_build_count(), 1, "only the round-0 build is full");
    assert!(
        route_repair_count() > 0,
        "the churn mix must exercise repair"
    );
}
