//! Whole-toolkit determinism: identical seeds must reproduce identical
//! results across every stochastic subsystem, because EXPERIMENTS.md's
//! numbers are only meaningful if `cargo run` regenerates them bit-exact.

use ambience::arch::{ArchitectureClass, Processor};
use ambience::core::case_studies::cs1::{run_cs1, Cs1Config};
use ambience::core::case_studies::cs2::sweep_battery_life_threads;
use ambience::core::design_space::{explore_cs1_threads, DesignCell};
use ambience::dvs::{simulate_taskset, DvsPolicy, TaskSet};
use ambience::net::{
    replicate_gathering_faulted_observed_threads, replicate_gathering_observed_threads,
    replicate_gathering_threads,
};
use ambience::net::{
    simulate_clustered, simulate_gathering, ClusterConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ambience::radio::RadioEnergyModel;
use ambience::sim::fault::FaultSpec;
use ambience::sim::{replicate, replicate_all, replicate_all_par_threads, replicate_par_threads};
use ambience::tech::{TechnologyNode, VariationModel};
use ambience::units::{Area, Energy, Frequency, Length, Power, Temperature, TimeSpan};

#[test]
fn gathering_simulation_is_bit_exact() {
    let topo = Topology::random(25, Length::from_meters(100.0), 99);
    let config = NetworkConfig::sensor_default();
    let a = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
    let b = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
    assert_eq!(a, b);
}

#[test]
fn clustered_simulation_is_bit_exact() {
    let topo = Topology::grid(4, Length::from_meters(30.0));
    let radio = RadioEnergyModel::short_range_2003();
    let a = simulate_clustered(
        &topo,
        &radio,
        &ClusterConfig::classic(),
        Energy::from_joules(1.0),
        500,
        11,
    );
    let b = simulate_clustered(
        &topo,
        &radio,
        &ClusterConfig::classic(),
        Energy::from_joules(1.0),
        500,
        11,
    );
    assert_eq!(a, b);
}

#[test]
fn dvs_simulation_is_bit_exact() {
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
    let tasks = TaskSet::personal_audio();
    let a = simulate_taskset(
        &dsp,
        &tasks,
        DvsPolicy::Clairvoyant,
        TimeSpan::from_seconds(3.0),
        5,
    );
    let b = simulate_taskset(
        &dsp,
        &tasks,
        DvsPolicy::Clairvoyant,
        TimeSpan::from_seconds(3.0),
        5,
    );
    assert_eq!(a, b);
}

#[test]
fn cs1_run_is_deterministic() {
    let a = run_cs1(&Cs1Config::default());
    let b = run_cs1(&Cs1Config::default());
    assert_eq!(a.sustainability, b.sustainability);
    assert_eq!(a.budget.total(), b.budget.total());
}

#[test]
fn variation_yield_is_deterministic() {
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let y = |seed| {
        model.parametric_yield(
            &node,
            50e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.05),
            Power::from_milliwatts(5.0),
            1000,
            seed,
        )
    };
    assert_eq!(y(3), y(3));
    assert_ne!(y(3), y(4));
}

#[test]
fn monte_carlo_replication_is_deterministic() {
    let run = || {
        replicate(50, 123, |seed| {
            let topo = Topology::random(10, Length::from_meters(60.0), seed);
            topo.radius().as_meters()
        })
    };
    assert_eq!(run(), run());
}

/// The seeded random-topology radius observable shared by the parallel
/// bit-exactness tests: stochastic in the seed, cheap to evaluate.
fn radius_observable(seed: u64) -> f64 {
    Topology::random(10, Length::from_meters(60.0), seed)
        .radius()
        .as_meters()
}

#[test]
fn parallel_replication_is_bit_exact_with_serial() {
    // The tentpole contract: replicate_par at any worker count folds the
    // identical ordered sample vector, so the full Summary struct — mean,
    // std_dev, min, max, every last rounding — matches `==`.
    let serial = replicate(64, 123, radius_observable);
    for threads in [1usize, 2, 8] {
        let parallel = replicate_par_threads(threads, 64, 123, radius_observable);
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn multi_observable_replication_matches_per_observable_replicate() {
    // replicate_all summarizes each observable column exactly like a
    // solo replicate over the same seed schedule — same folds, same
    // bits — while running the experiment once instead of once per
    // observable.
    let all = replicate_all(64, 123, 2, |seed, row| {
        let r = radius_observable(seed);
        row[0] = r;
        row[1] = r * r;
    });
    let radius = replicate(64, 123, radius_observable);
    let squared = replicate(64, 123, |seed| {
        let r = radius_observable(seed);
        r * r
    });
    assert_eq!(all, vec![radius, squared]);
}

#[test]
fn parallel_multi_observable_replication_is_bit_exact_with_serial() {
    let experiment = |seed: u64, row: &mut [f64]| {
        let r = radius_observable(seed);
        row[0] = r;
        row[1] = r * r;
    };
    let serial = replicate_all(64, 123, 2, experiment);
    for threads in [1usize, 2, 8] {
        let parallel = replicate_all_par_threads(threads, 64, 123, 2, experiment);
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn parallel_battery_life_sweep_is_bit_exact_with_serial() {
    // F4's node×policy sweep fans one cell per (node, policy) pair and
    // merges in node-major order, so the table the binary prints cannot
    // depend on the worker count.
    let nodes = [TechnologyNode::n130(), TechnologyNode::n90()];
    let policies = [DvsPolicy::None, DvsPolicy::Clairvoyant];
    let serial = sweep_battery_life_threads(1, &nodes, &policies);
    assert_eq!(serial.len(), 4, "node-major grid of 2x2 cells");
    for threads in [2usize, 8] {
        let parallel = sweep_battery_life_threads(threads, &nodes, &policies);
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn parallel_design_space_is_bit_exact_with_serial() {
    let base = Cs1Config::default();
    let areas: Vec<Area> = [2.0, 8.0, 16.0]
        .iter()
        .map(|&cm2| Area::from_square_centimeters(cm2))
        .collect();
    let intervals: Vec<TimeSpan> = [0.25, 2.0, 8.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let serial = explore_cs1_threads(1, &base, &areas, &intervals);
    let key = |c: &DesignCell| {
        (
            c.pv_area,
            c.check_interval,
            c.load,
            c.harvest,
            c.sustainable,
        )
    };
    for threads in [2usize, 8] {
        let parallel = explore_cs1_threads(threads, &base, &areas, &intervals);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(key(s), key(p), "threads = {threads}");
        }
    }
}

#[test]
fn parallel_gathering_replication_is_bit_exact_with_serial() {
    let config = NetworkConfig::sensor_default();
    let field = |seed| Topology::random(15, Length::from_meters(90.0), seed);
    let serial =
        replicate_gathering_threads(1, 12, 7, field, RoutingStrategy::MinimumEnergy, &config, 50);
    for threads in [2usize, 8] {
        let parallel = replicate_gathering_threads(
            threads,
            12,
            7,
            field,
            RoutingStrategy::MinimumEnergy,
            &config,
            50,
        );
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn observed_replication_ledger_is_bit_exact_across_thread_counts() {
    // The observability contract: the merged energy ledger and packet
    // counters fold per-replication recorders in seed order, so every
    // charge cell, residual and counter matches `==` at any worker count.
    let config = NetworkConfig::sensor_default();
    let field = |seed| Topology::random(15, Length::from_meters(90.0), seed);
    let (serial_reports, serial_obs) = replicate_gathering_observed_threads(
        1,
        12,
        7,
        field,
        RoutingStrategy::MinimumEnergy,
        &config,
        50,
    );
    for threads in [2usize, 8] {
        let (reports, obs) = replicate_gathering_observed_threads(
            threads,
            12,
            7,
            field,
            RoutingStrategy::MinimumEnergy,
            &config,
            50,
        );
        assert_eq!(serial_reports, reports, "threads = {threads}");
        assert_eq!(serial_obs, obs, "threads = {threads}");
    }
}

#[test]
fn f6_manifest_is_byte_identical_across_thread_counts() {
    // Manifests must not leak the worker count: the runner stanza records
    // the merge *policy*, and the ledger merges in seed order, so the
    // rendered JSON is the same byte string at 1, 2 and 8 threads.
    let at_one = ami_experiments::manifests::f6_manifest_threads(1).to_json();
    for threads in [2usize, 8] {
        let json = ami_experiments::manifests::f6_manifest_threads(threads).to_json();
        assert_eq!(at_one, json, "threads = {threads}");
    }
}

#[test]
fn faulted_replication_is_bit_exact_across_thread_counts() {
    // Fault injection must not weaken the determinism contract: a
    // FaultSpec schedule is a pure function of each replication's seed,
    // so faulted reports and the merged ledger/counters match `==` at
    // any worker count.
    let config = NetworkConfig::sensor_default();
    let field = |seed| Topology::random(15, Length::from_meters(90.0), seed);
    let spec = FaultSpec::parse("death=0.2,outage=0.3:10,link=0.2:8,seed=9").unwrap();
    let faults = |seed| spec.schedule_for(seed, 15, 50);
    let (serial_reports, serial_obs) = replicate_gathering_faulted_observed_threads(
        1,
        12,
        7,
        field,
        faults,
        RoutingStrategy::MinimumEnergy,
        &config,
        50,
    );
    assert!(
        serial_obs.packets.dropped_fault > 0,
        "the fault mix must actually bite for this test to mean anything"
    );
    assert!(serial_obs.packets.is_conserved());
    for threads in [2usize, 8] {
        let (reports, obs) = replicate_gathering_faulted_observed_threads(
            threads,
            12,
            7,
            field,
            faults,
            RoutingStrategy::MinimumEnergy,
            &config,
            50,
        );
        assert_eq!(serial_reports, reports, "threads = {threads}");
        assert_eq!(serial_obs, obs, "threads = {threads}");
    }
}

#[test]
fn f6_faulted_manifest_is_byte_identical_across_thread_counts() {
    let at_one = ami_experiments::manifests::f6_faulted_manifest_threads(1).to_json();
    assert!(at_one.contains("\"experiment\": \"F6-faulted\""));
    assert!(at_one.contains("\"fault\":"));
    for threads in [2usize, 8] {
        let json = ami_experiments::manifests::f6_faulted_manifest_threads(threads).to_json();
        assert_eq!(at_one, json, "threads = {threads}");
    }
}
