//! Whole-toolkit determinism: identical seeds must reproduce identical
//! results across every stochastic subsystem, because EXPERIMENTS.md's
//! numbers are only meaningful if `cargo run` regenerates them bit-exact.

use ambience::arch::{ArchitectureClass, Processor};
use ambience::core::case_studies::cs1::{run_cs1, Cs1Config};
use ambience::dvs::{simulate_taskset, DvsPolicy, TaskSet};
use ambience::net::{
    simulate_clustered, simulate_gathering, ClusterConfig, NetworkConfig, RoutingStrategy, Topology,
};
use ambience::radio::RadioEnergyModel;
use ambience::sim::replicate;
use ambience::tech::{TechnologyNode, VariationModel};
use ambience::units::{Energy, Frequency, Length, Power, Temperature, TimeSpan};

#[test]
fn gathering_simulation_is_bit_exact() {
    let topo = Topology::random(25, Length::from_meters(100.0), 99);
    let config = NetworkConfig::sensor_default();
    let a = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
    let b = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, 200);
    assert_eq!(a, b);
}

#[test]
fn clustered_simulation_is_bit_exact() {
    let topo = Topology::grid(4, Length::from_meters(30.0));
    let radio = RadioEnergyModel::short_range_2003();
    let a = simulate_clustered(
        &topo,
        &radio,
        &ClusterConfig::classic(),
        Energy::from_joules(1.0),
        500,
        11,
    );
    let b = simulate_clustered(
        &topo,
        &radio,
        &ClusterConfig::classic(),
        Energy::from_joules(1.0),
        500,
        11,
    );
    assert_eq!(a, b);
}

#[test]
fn dvs_simulation_is_bit_exact() {
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
    let tasks = TaskSet::personal_audio();
    let a = simulate_taskset(
        &dsp,
        &tasks,
        DvsPolicy::Clairvoyant,
        TimeSpan::from_seconds(3.0),
        5,
    );
    let b = simulate_taskset(
        &dsp,
        &tasks,
        DvsPolicy::Clairvoyant,
        TimeSpan::from_seconds(3.0),
        5,
    );
    assert_eq!(a, b);
}

#[test]
fn cs1_run_is_deterministic() {
    let a = run_cs1(&Cs1Config::default());
    let b = run_cs1(&Cs1Config::default());
    assert_eq!(a.sustainability, b.sustainability);
    assert_eq!(a.budget.total(), b.budget.total());
}

#[test]
fn variation_yield_is_deterministic() {
    let model = VariationModel::typical_2003();
    let node = TechnologyNode::n90();
    let y = |seed| {
        model.parametric_yield(
            &node,
            50e3,
            Temperature::ROOM,
            Frequency::from_gigahertz(1.05),
            Power::from_milliwatts(5.0),
            1000,
            seed,
        )
    };
    assert_eq!(y(3), y(3));
    assert_ne!(y(3), y(4));
}

#[test]
fn monte_carlo_replication_is_deterministic() {
    let run = || {
        replicate(50, 123, |seed| {
            let topo = Topology::random(10, Length::from_meters(60.0), seed);
            topo.radius().as_meters()
        })
    };
    assert_eq!(run(), run());
}
