//! Cross-crate integration tests: flows that thread several `ami-*`
//! crates together through the `ambience` facade.

use ambience::arch::{ArchitectureClass, Processor, SocBuilder};
use ambience::core::case_studies::cs1::{run_cs1, Cs1Config};
use ambience::core::case_studies::cs2::{run_cs2, Cs2Config};
use ambience::core::{ambient_room, AmbientDevice, EnergySource};
use ambience::dvs::{simulate_taskset, DvsPolicy, TaskSet};
use ambience::energy::{Battery, BatteryModel, Chemistry};
use ambience::net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
use ambience::power::{DeviceKind, PowerClass};
use ambience::tech::TechnologyNode;
use ambience::units::{ComputeRate, DataRate, Energy, Length, Power, TimeSpan};

#[test]
fn cs1_budget_feeds_network_simulation_consistently() {
    // The CS1 node budget (energy + radio + arch crates) plugged into the
    // network simulator (net crate) as the idle baseline must let a small
    // office network survive a simulated week.
    let cs1 = run_cs1(&Cs1Config::default());
    let mut config = NetworkConfig::sensor_default();
    config.idle_power = cs1.budget.total();
    config.node_energy = Energy::from_joules(100.0);
    let topo = Topology::grid(3, Length::from_meters(20.0));
    let rounds = 7 * 24 * 60; // one week of 1-minute rounds
    let report = simulate_gathering(&topo, RoutingStrategy::MinimumEnergy, &config, rounds);
    assert!(report.first_death_round.is_none(), "{report:?}");
    assert_eq!(report.delivered_packets, rounds * 8);
}

#[test]
fn cs2_device_is_class_consistent_and_portable() {
    let cs2 = run_cs2(&Cs2Config::default());
    let device = AmbientDevice::new(
        cs2.budget,
        EnergySource::Battery(Battery::new(Chemistry::AlkalineAa, BatteryModel::Peukert)),
        DataRate::from_kilobits_per_second(192.0),
        DeviceKind::Computation,
    );
    assert_eq!(device.class(), PowerClass::MilliWatt);
    assert!(device.class_consistent());
    let life = device.battery_life().expect("battery device");
    assert!(life.as_hours() > 10.0);
}

#[test]
fn dvs_savings_survive_the_battery_model() {
    // tech → arch → dvs → energy: the DVS energy saving must translate
    // into battery life under every discharge model.
    let dsp = Processor::new("dsp", ArchitectureClass::Dsp, TechnologyNode::n130());
    let tasks = TaskSet::personal_audio();
    let horizon = TimeSpan::from_seconds(5.0);
    let none = simulate_taskset(&dsp, &tasks, DvsPolicy::None, horizon, 9);
    let dvs = simulate_taskset(&dsp, &tasks, DvsPolicy::WorstCaseStretch, horizon, 9);
    for model in [
        BatteryModel::Linear,
        BatteryModel::Peukert,
        BatteryModel::RateCapacity,
    ] {
        let battery = Battery::new(Chemistry::LiIon, model);
        let life_none = battery.lifetime_under(none.average_power());
        let life_dvs = battery.lifetime_under(dvs.average_power());
        assert!(
            life_dvs > life_none,
            "{model:?}: DVS must extend life ({life_dvs:?} vs {life_none:?})"
        );
    }
}

#[test]
fn room_graph_spans_five_decades_of_power() {
    let room = ambient_room(10);
    let graph = room.graph();
    let powers: Vec<f64> = graph
        .points()
        .iter()
        .map(|p| p.power().as_watts())
        .collect();
    let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = powers.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min > 1e4,
        "the ambient room must span >4 decades, got {:.1e}",
        max / min
    );
}

#[test]
fn processor_power_is_consistent_with_tech_model() {
    // arch's ASIC at full tilt must equal the tech model's prediction for
    // the same switched capacitance (modulo leakage).
    let node = TechnologyNode::n130();
    let asic = Processor::new("a", ArchitectureClass::Asic, node.clone());
    let throughput = ComputeRate::from_mops(100.0);
    let power = asic.power_at(throughput, node.vdd_nominal());
    let expected_dynamic = asic.energy_per_op_nominal().as_joules_per_op() * 100e6;
    assert!(power.as_watts() >= expected_dynamic);
    assert!(
        power.as_watts() < expected_dynamic * 1.5,
        "leakage should be a minor add-on here"
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // Compile-level integration: build a small budget from facade paths.
    let soc = SocBuilder::new("facade check")
        .component("a", Power::from_milliwatts(1.0))
        .component("b", Power::from_microwatts(500.0))
        .build();
    assert_eq!(PowerClass::of(soc.total()), PowerClass::MilliWatt);
}
