//! Repo-local stand-in for serde's derive macros.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with a
//! hand-rolled token parser (the offline build has no `syn`/`quote`).
//! Supported shapes — exactly the ones the workspace uses:
//!
//! * unit structs (`struct CsmaMac;`)
//! * tuple structs, including the `quantity!` newtypes (`struct Power(f64);`)
//! * named-field structs
//! * fieldless enums (unit variants only, `#[default]` attributes allowed)
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming this crate, so a future API change fails loudly instead
//! of silently mis-serializing.
//!
//! The generated `Serialize` impls follow upstream serde's data model
//! (newtypes forward to the inner value, structs use `serialize_struct`,
//! enums use `serialize_unit_variant`). `Deserialize` impls are guarded
//! stubs: nothing in the toolkit deserializes, and the stub keeps the
//! trait bound satisfied without dragging in a full deserializer.
//!
//! # Example
//!
//! The macros expand against the sibling `serde` stand-in:
//!
//! ```
//! use serde_derive::Serialize;
//!
//! #[derive(Serialize)]
//! struct Probe {
//!     value: u32,
//! }
//!
//! fn pin_serializable<T: serde::Serialize>(_: &T) {}
//! pin_serializable(&Probe { value: 7 });
//! ```

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving item.
enum Shape {
    UnitStruct,
    TupleStruct { fields: usize },
    NamedStruct { fields: Vec<String> },
    FieldlessEnum { variants: Vec<String> },
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => serialize_impl(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => deserialize_impl(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "mini serde_derive: generic type `{name}` is not supported"
        ));
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    fields: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: named_fields(g.stream())?,
            },
            other => return Err(format!("mini serde_derive: unexpected token {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::FieldlessEnum {
                    variants: enum_variants(g.stream(), &name)?,
                }
            }
            other => return Err(format!("mini serde_derive: unexpected token {other:?}")),
        },
        other => {
            return Err(format!(
                "mini serde_derive: cannot derive for `{other}` items"
            ))
        }
    };
    Ok(Item { name, shape })
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // [...]
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate) and friends
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "mini serde_derive: expected identifier, got {other:?}"
        )),
    }
}

/// Counts the comma-separated fields of a tuple-struct body, ignoring
/// commas nested inside groups or angle brackets.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Extracts the field names of a named-struct body.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "mini serde_derive: expected `:` after field `{name}`, got {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type: consume to the next comma outside groups/angles.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts the variant names of a fieldless enum body.
fn enum_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "mini serde_derive: variant `{enum_name}::{name}` carries data, \
                     which this stand-in does not support"
                ))
            }
            other => {
                return Err(format!(
                    "mini serde_derive: unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => {
            format!("::serde::Serializer::serialize_unit_struct(serializer, \"{name}\")")
        }
        Shape::TupleStruct { fields: 1 } => format!(
            "::serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
        ),
        Shape::TupleStruct { fields } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_tuple_struct(\
                 serializer, \"{name}\", {fields})?;"
            );
            for idx in 0..*fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{idx})?;"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            body
        }
        Shape::NamedStruct { fields } => {
            let mut body = format!(
                "let mut state = ::serde::Serializer::serialize_struct(\
                 serializer, \"{name}\", {})?;",
                fields.len()
            );
            for field in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                     &mut state, \"{field}\", &self.{field})?;"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(state)");
            body
        }
        Shape::FieldlessEnum { variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| {
                    format!(
                        "{name}::{v} => ::serde::Serializer::serialize_unit_variant(\
                         serializer, \"{name}\", {idx}u32, \"{v}\"),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(\
                 &self, serializer: __S\
             ) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(\
                 _deserializer: __D\
             ) -> ::core::result::Result<Self, __D::Error> {{\n\
                 ::core::unimplemented!(\
                     \"mini-serde stand-in: deserialization of `{name}` is not supported\"\
                 )\n\
             }}\n\
         }}"
    )
}
