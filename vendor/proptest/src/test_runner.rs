//! The case loop behind [`proptest!`](crate::proptest).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Default number of cases per property, matching upstream proptest.
pub const DEFAULT_CASES: usize = 256;

/// Number of cases per property: `PROPTEST_CASES` or the default.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Runs `body` against `cases()` generated cases.
///
/// The RNG for case `k` is seeded from a stable hash of
/// `(test name, k)`, so every run — local or CI — exercises the same
/// deterministic case sequence, and a reported failing case index
/// reproduces without a regressions file.
pub fn run(name: &str, body: impl Fn(&mut TestRng)) {
    for case in 0..cases() {
        let seed = fnv1a(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("proptest stand-in: `{name}` failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// FNV-1a over the test name: stable across runs, platforms and Rust
/// versions (unlike `DefaultHasher`).
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
