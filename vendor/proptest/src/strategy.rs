//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed samplers; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    options: Vec<Sampler<V>>,
}

/// One boxed option of a [`Union`].
pub type Sampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Sampler<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        (self.options[idx])(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(f64, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
