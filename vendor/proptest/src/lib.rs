//! Repo-local, dependency-free stand-in for the `proptest` crate.
//!
//! The offline build cannot fetch upstream proptest, so this crate
//! reimplements the slice of its API the workspace's property tests
//! use: the [`proptest!`] test macro, panic-based `prop_assert!` /
//! `prop_assert_eq!`, range and [`Just`](crate::strategy::Just)
//! strategies, strategy tuples,
//! [`prop_oneof!`], `prop::collection::vec`, and `prop_map`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the assertion message
//!   immediately; rerun with `PROPTEST_CASES` and the printed case seed
//!   to investigate.
//! * **Deterministic by default** — each test's RNG is seeded from a
//!   stable hash of the test name, so CI failures reproduce locally
//!   without a regressions file (existing `proptest-regressions` files
//!   are ignored).
//! * Case count comes from `PROPTEST_CASES` (default 256, like
//!   upstream).
//!
//! # Example
//!
//! Strategies can also be driven directly through the
//! [`test_runner`] case loop, which is what the [`proptest!`] macro
//! expands to:
//!
//! ```
//! use proptest::strategy::{Just, Strategy};
//! use proptest::test_runner;
//!
//! test_runner::run("doc-example", |rng| {
//!     let x = (1u32..100).sample(rng);
//!     assert!((1..100).contains(&x));
//!     assert_eq!(Just(7u32).sample(rng), 7);
//! });
//! ```

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `PROPTEST_CASES`
/// times and runs the body against each case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)*
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test; panics with the
/// (optional) formatted message on failure, failing the whole test
/// without shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// A strategy choosing uniformly among the listed strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
        > = vec![
            $({
                let s = $strategy;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                })
            }),+
        ];
        $crate::strategy::Union::new(options)
    }};
}
