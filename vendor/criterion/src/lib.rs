//! Repo-local, dependency-free stand-in for the `criterion` crate.
//!
//! The offline build cannot fetch upstream criterion; this crate keeps
//! the workspace's `benches/` sources compiling unchanged and actually
//! *measures*: warm-up, then timed batches, reporting the mean
//! time/iteration with min/max batch spread. No statistical regression
//! machinery — numbers are for comparing alternatives within one run
//! (e.g. the serial-vs-parallel runner groups), not across machines.
//!
//! Mode selection follows cargo's argument convention for
//! `harness = false` targets:
//!
//! * `cargo bench` passes `--bench` → full measurement;
//! * `cargo test` (which builds and runs bench targets) passes
//!   `--test` or nothing → each benchmark body runs **once** as a smoke
//!   test, keeping `cargo test -q` fast.
//!
//! # Example
//!
//! The registration surface matches upstream, so a bench body is plain
//! criterion code (here it runs in smoke mode — no `--bench` argument):
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! c.bench_function("add", |b| b.iter(|| 1 + 1));
//! ```

use std::time::{Duration, Instant};

/// How a benchmark invocation should behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Timed batches (under `cargo bench`).
    Measure,
    /// One iteration per benchmark (under `cargo test`).
    Smoke,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// A benchmark name filter from the command line (first free argument).
fn filter_from_args() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test")
}

/// The benchmark driver; one per `criterion_group!` function.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: mode_from_args(),
            filter: filter_from_args(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Registers and runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut bencher);
        match (self.mode, bencher.report) {
            (Mode::Smoke, _) => println!("bench {id}: ok (smoke)"),
            (Mode::Measure, Some(report)) => println!("{id:<60} {report}"),
            (Mode::Measure, None) => println!("bench {id}: no measurement recorded"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, &mut f);
        self
    }

    /// Registers and runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id);
        self.criterion.run_one(&id, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        Self {
            text: text.to_owned(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Measurement summary of one benchmark.
struct Report {
    mean: Duration,
    fastest_batch: Duration,
    slowest_batch: Duration,
    iterations: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time/iter: {} [batch min {} max {}] ({} iters)",
            fmt_duration(self.mean),
            fmt_duration(self.fastest_batch),
            fmt_duration(self.slowest_batch),
            self.iterations
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Runs the closure under timing; handed to benchmark functions.
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(routine());
            }
            Mode::Measure => {
                // Warm-up: run until the warm-up budget is spent, and use
                // the observed rate to size measurement batches.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < self.warm_up {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

                // Aim for ~10 batches inside the measurement budget.
                let batch_size = (self.measurement.as_nanos() / (10 * per_iter.as_nanos().max(1)))
                    .clamp(1, u128::from(u32::MAX)) as u64;

                let mut total = Duration::ZERO;
                let mut iterations = 0u64;
                let mut fastest_batch = Duration::MAX;
                let mut slowest_batch = Duration::ZERO;
                while total < self.measurement {
                    let start = Instant::now();
                    for _ in 0..batch_size {
                        std::hint::black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    let per_batch_iter = elapsed / batch_size.max(1) as u32;
                    fastest_batch = fastest_batch.min(per_batch_iter);
                    slowest_batch = slowest_batch.max(per_batch_iter);
                    total += elapsed;
                    iterations += batch_size;
                }
                self.report = Some(Report {
                    mean: total / iterations.max(1) as u32,
                    fastest_batch,
                    slowest_batch,
                    iterations,
                });
            }
        }
    }
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
