//! Repo-local, dependency-free stand-in for the `serde` crate.
//!
//! The build environment is offline, so upstream `serde` can never be
//! fetched. This crate supplies the subset of serde's data model that
//! the workspace actually exercises: the [`Serialize`] /
//! [`Deserialize`] traits, the full [`Serializer`] method surface (the
//! units property tests drive a hand-written serializer through it),
//! [`ser::Impossible`], and the `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the sibling `serde_derive` stand-in).
//!
//! The serializer data model matches upstream: newtype structs forward
//! to their inner value, named-field structs go through
//! `serialize_struct`, fieldless enums through `serialize_unit_variant`.
//! Deserialization is declared but not implemented — nothing in the
//! toolkit deserializes today, and the derive emits a guarded stub.
//!
//! # Example
//!
//! With the `derive` feature (how every workspace crate consumes this
//! stand-in), config and report types opt into the data model with the
//! usual attribute:
//!
//! ```
//! # use serde_derive::Serialize; // dev-dep import: compiles with `derive` on or off
//! #[derive(Serialize)]
//! struct RunReport {
//!     delivered: u64,
//!     energy_j: f64,
//! }
//!
//! fn pin_serializable<T: serde::Serialize>(_: &T) {}
//! pin_serializable(&RunReport { delivered: 42, energy_j: 1.5 });
//! ```

pub mod ser;

pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A data structure reconstructible from the serde data model.
///
/// The toolkit derives this for its config/report types but never calls
/// it; the derived impls are compile-checked stubs.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from `deserializer`.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error on malformed input.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format driver for [`Deserialize`]. Declared for signature
/// compatibility; no formats are bundled.
pub trait Deserializer<'de> {
    /// The format's error type.
    type Error;
}
