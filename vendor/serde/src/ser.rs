//! The serialization half of the data model.

use std::fmt::Display;
use std::marker::PhantomData;

/// A data structure expressible in the serde data model.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Returns the serializer's error if the format rejects the value.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Errors producible by a serializer.
pub trait Error: Sized {
    /// Builds an error carrying `msg`.
    fn custom<T: Display>(msg: T) -> Self;
}

impl Error for std::fmt::Error {
    fn custom<T: Display>(_msg: T) -> Self {
        std::fmt::Error
    }
}

/// A data format driving [`Serialize`]. The method set mirrors upstream
/// serde's `Serializer` exactly (minus the 128-bit and convenience
/// methods the workspace never touches), so hand-written serializers —
/// like the capture serializer in the units property tests — port
/// verbatim.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// The format's error type.
    type Error: Error;

    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Element-wise sequence serialization.
pub trait SerializeSeq {
    type Ok;
    type Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Element-wise tuple serialization.
pub trait SerializeTuple {
    type Ok;
    type Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-wise tuple-struct serialization.
pub trait SerializeTupleStruct {
    type Ok;
    type Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-wise tuple-variant serialization.
pub trait SerializeTupleVariant {
    type Ok;
    type Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Entry-wise map serialization.
pub trait SerializeMap {
    type Ok;
    type Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-wise struct serialization.
pub trait SerializeStruct {
    type Ok;
    type Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Field-wise struct-variant serialization.
pub trait SerializeStructVariant {
    type Ok;
    type Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// An uninhabited sub-serializer for formats that reject compound types;
/// mirrors `serde::ser::Impossible`.
pub struct Impossible<Ok, Error> {
    void: Void,
    _marker: PhantomData<(Ok, Error)>,
}

enum Void {}

macro_rules! impossible_impl {
    ($trait_:ident, $($method:ident ( $($arg:ident : $ty:ty),* )),+) => {
        impl<Ok, Error> $trait_ for Impossible<Ok, Error> {
            type Ok = Ok;
            type Error = Error;
            $(
                fn $method<T: Serialize + ?Sized>(&mut self, $($arg: $ty),*) -> Result<(), Self::Error> {
                    let _ = ($($arg,)*);
                    match self.void {}
                }
            )+
            fn end(self) -> Result<Self::Ok, Self::Error> {
                match self.void {}
            }
        }
    };
}

impossible_impl!(SerializeSeq, serialize_element(value: &T));
impossible_impl!(SerializeTuple, serialize_element(value: &T));
impossible_impl!(SerializeTupleStruct, serialize_field(value: &T));
impossible_impl!(SerializeTupleVariant, serialize_field(value: &T));
impossible_impl!(
    SerializeMap,
    serialize_key(key: &T),
    serialize_value(value: &T)
);
impossible_impl!(SerializeStruct, serialize_field(key: &'static str, value: &T));
impossible_impl!(
    SerializeStructVariant,
    serialize_field(key: &'static str, value: &T)
);

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident),+ $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )+};
}

primitive_serialize!(
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(2)?;
        tuple.serialize_element(&self.0)?;
        tuple.serialize_element(&self.1)?;
        tuple.end()
    }
}
