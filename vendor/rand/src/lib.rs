//! Repo-local, dependency-free stand-in for the `rand` crate.
//!
//! The toolkit's build environment is fully offline, so the real `rand`
//! can never be fetched; this crate supplies the *exact* API surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng`], and [`RngExt`] —
//! with a portable, deterministic generator. Stream values differ from
//! upstream `rand`, but the determinism contract the toolkit relies on
//! (same seed ⇒ same stream, forever, on every platform) is identical
//! and is locked down by `tests/determinism.rs`.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 exactly as the reference implementation recommends, so
//! nearby `u64` seeds yield well-decorrelated streams — important for
//! the `base_seed + k` replication scheme in `ami-sim`.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(2003);
//! let mut b = StdRng::seed_from_u64(2003);
//! // Same seed, same stream — on every platform, forever.
//! assert_eq!(a.next_u64(), b.next_u64());
//! let roll = a.random_range(1u32..=6);
//! assert!((1..=6).contains(&roll));
//! ```

pub mod rngs {
    /// A portable, seedable pseudo-random generator (xoshiro256**).
    ///
    /// Deterministic across platforms and releases: the stream produced
    /// by a given seed is part of the toolkit's reproducibility contract.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 64-bit output of one generator step.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_u64_seed(seed)
        }
    }

    impl crate::RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            StdRng::next_u64(self)
        }
    }
}

pub mod counter {
    //! Counter-based (splittable) generation: every draw is addressable.
    //!
    //! [`super::rngs::StdRng`] is a *sequential* generator — draw `k`
    //! exists only after draws `0..k` have been made, so any consumer
    //! sharing one stream couples its results to execution order. A
    //! [`CounterRng`] instead derives draw `i` as a pure function of
    //! `(key, i)`: a SplitMix64 finalizer applied to the key plus the
    //! Weyl-sequence offset of the counter — the exact construction the
    //! reference SplitMix64 generator uses, here with the state walk
    //! made explicit so any position in any keyed stream can be
    //! computed independently.
    //!
    //! Keys are derived from a word tuple via [`CounterRng::keyed`]
    //! (full-avalanche chaining), so logically distinct streams — e.g.
    //! one per `(seed, round, packet)` — are well-decorrelated even for
    //! adjacent tuples. This is what makes simulation kernels
    //! order-independent: work items may execute in any order, on any
    //! thread, and still see bit-identical randomness.
    //!
    //! # Example
    //!
    //! ```
    //! use rand::counter::CounterRng;
    //! use rand::RngExt;
    //!
    //! let mut a = CounterRng::keyed(&[2003, 7, 42]);
    //! let mut b = CounterRng::keyed(&[2003, 7, 42]);
    //! assert_eq!(a.next_u64(), b.next_u64()); // same key, same stream
    //! let mut c = CounterRng::keyed(&[2003, 7, 43]);
    //! assert_ne!(a.next_u64(), c.next_u64()); // nearby keys decorrelate
    //! ```

    /// The SplitMix64 Weyl increment (golden-ratio fraction).
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// The SplitMix64 finalizer: a full-avalanche 64-bit mix.
    #[inline]
    fn mix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A keyed counter-based generator: draw `i` of stream `key` is
    /// `mix64(key + (i + 1) * GOLDEN)` — stateless in everything but
    /// the draw index, so streams are splittable and each position is
    /// addressable without generating its predecessors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CounterRng {
        key: u64,
        counter: u64,
    }

    impl CounterRng {
        /// The stream identified by a raw 64-bit `key`, positioned at
        /// draw 0.
        pub fn new(key: u64) -> Self {
            Self { key, counter: 0 }
        }

        /// Derives a stream key from a tuple of words by full-avalanche
        /// chaining (each word is mixed into the running key through
        /// the SplitMix64 finalizer), then positions at draw 0. Distinct tuples —
        /// including prefixes, e.g. `[a]` vs `[a, 0]` — map to
        /// decorrelated streams.
        pub fn keyed(words: &[u64]) -> Self {
            // Fractional digits of pi: an arbitrary, documented origin.
            let mut key = 0x243F_6A88_85A3_08D3u64;
            for (position, &word) in words.iter().enumerate() {
                key = mix64(
                    key.wrapping_add(word)
                        .wrapping_add((position as u64).wrapping_mul(GOLDEN)),
                );
            }
            Self::new(key)
        }

        /// The number of draws consumed so far (the next draw's index).
        pub fn draws(&self) -> u64 {
            self.counter
        }

        /// The raw 64-bit output of one draw.
        pub fn next_u64(&mut self) -> u64 {
            self.counter += 1;
            mix64(self.key.wrapping_add(self.counter.wrapping_mul(GOLDEN)))
        }
    }

    impl crate::RngExt for CounterRng {
        fn next_u64(&mut self) -> u64 {
            CounterRng::next_u64(self)
        }
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface: uniform draws of primitives and ranges.
///
/// Mirrors the subset of upstream `rand`'s `Rng` that the toolkit uses.
pub trait RngExt {
    /// The raw 64-bit output of one generator step.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of `T` over its standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, fair `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.random::<f64>() < p
    }
}

/// Types drawable by [`RngExt::random`].
pub trait Standard: Sized {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngExt>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let u: f64 = f64::from_rng(rng);
        start + u * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased modular draw (Lemire-style rejection).
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        return self.start + (raw % span) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == end {
                    return start;
                }
                let span = (end - start) as u64 + 1;
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone {
                        return start + (raw % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&v));
            let w = rng.random_range(0.25..=1.0);
            assert!((0.25..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    mod counter {
        use crate::counter::CounterRng;
        use crate::RngExt;

        #[test]
        fn same_key_same_stream() {
            let mut a = CounterRng::keyed(&[2003, 17, 5]);
            let mut b = CounterRng::keyed(&[2003, 17, 5]);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn draws_are_addressable_without_predecessors() {
            // Draw k of a stream equals what a fresh generator produces
            // after skipping k draws — no hidden sequential state.
            let mut sequential = CounterRng::keyed(&[7, 7]);
            let head: Vec<u64> = (0..32).map(|_| sequential.next_u64()).collect();
            for (k, &expect) in head.iter().enumerate() {
                let mut fresh = CounterRng::keyed(&[7, 7]);
                for _ in 0..k {
                    fresh.next_u64();
                }
                assert_eq!(fresh.draws(), k as u64);
                assert_eq!(fresh.next_u64(), expect, "draw {k}");
            }
        }

        #[test]
        fn adjacent_tuples_decorrelate() {
            // Neighbouring keys in every tuple position must produce
            // unrelated streams — the property per-packet keying relies
            // on. 64 draws with zero collisions is a crude but
            // deterministic decorrelation check.
            let base: Vec<u64> = {
                let mut rng = CounterRng::keyed(&[1, 2, 3]);
                (0..64).map(|_| rng.next_u64()).collect()
            };
            for bumped in [[2, 2, 3], [1, 3, 3], [1, 2, 4]] {
                let mut rng = CounterRng::keyed(&bumped);
                let collisions = base.iter().filter(|&&want| rng.next_u64() == want).count();
                assert_eq!(collisions, 0, "tuple {bumped:?}");
            }
        }

        #[test]
        fn prefix_tuples_are_distinct_streams() {
            let mut short = CounterRng::keyed(&[9]);
            let mut padded = CounterRng::keyed(&[9, 0]);
            let same = (0..32)
                .filter(|_| short.next_u64() == padded.next_u64())
                .count();
            assert_eq!(same, 0);
        }

        #[test]
        fn implements_the_sampling_interface() {
            let mut rng = CounterRng::keyed(&[11, 0, 0]);
            for _ in 0..10_000 {
                let v: f64 = rng.random::<f64>();
                assert!((0.0..1.0).contains(&v));
            }
            let roll = rng.random_range(1u32..=6);
            assert!((1..=6).contains(&roll));
        }

        #[test]
        fn uniform_mean_is_centered() {
            let mut rng = CounterRng::new(0xDEAD_BEEF);
            let n = 100_000;
            let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        }
    }
}
