//! Auditing candidate devices against the keynote's class contracts, and
//! exploring the µW-node design space to fix a failing one.
//!
//! Run with: `cargo run --example design_audit`

use ambience::arch::SocBuilder;
use ambience::core::case_studies::cs1::Cs1Config;
use ambience::core::challenges::{audit, report};
use ambience::core::design_space::{cs1_frontier, explore_cs1, render_map};
use ambience::core::{AmbientDevice, EnergySource};
use ambience::energy::{Battery, BatteryModel, Chemistry};
use ambience::power::DeviceKind;
use ambience::units::{Area, DataRate, Power, TimeSpan};

fn main() {
    // A naive "portable media box": 6 W of silicon on a Li-ion pouch.
    let naive = AmbientDevice::new(
        SocBuilder::new("portable media box")
            .component("cpu video decode", Power::from_watts(4.5))
            .component("display", Power::from_watts(1.2))
            .component("wlan", Power::from_milliwatts(300.0))
            .build(),
        EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Peukert)),
        DataRate::from_megabits_per_second(4.0),
        DeviceKind::Interface,
    );
    println!("Audit of the naive design:\n");
    print!("{}", report(&audit(&naive)));

    // A disciplined alternative: the same function on dedicated silicon.
    let disciplined = AmbientDevice::new(
        SocBuilder::new("portable media player")
            .component("asic video decode", Power::from_milliwatts(60.0))
            .component("display", Power::from_milliwatts(450.0))
            .component("wlan (duty-cycled)", Power::from_milliwatts(40.0))
            .build(),
        EnergySource::Battery(Battery::new(Chemistry::LiIon, BatteryModel::Peukert)),
        DataRate::from_megabits_per_second(4.0),
        DeviceKind::Interface,
    );
    println!("\nAudit of the disciplined design:\n");
    print!("{}", report(&audit(&disciplined)));

    // And for the µW class, the audit's counterpart is the design space.
    println!("\nThe autonomous node's feasibility map:\n");
    let areas: Vec<Area> = [2.0, 4.0, 8.0, 16.0]
        .iter()
        .map(|&c| Area::from_square_centimeters(c))
        .collect();
    let intervals: Vec<TimeSpan> = [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&s| TimeSpan::from_seconds(s))
        .collect();
    let cells = explore_cs1(&Cs1Config::default(), &areas, &intervals);
    print!("{}", render_map(&cells));
    println!("\nSmallest sustainable cell per check interval:");
    for (interval, area) in cs1_frontier(&cells) {
        println!(
            "  {:>4.1} s -> {}",
            interval.as_seconds(),
            area.map_or("-".to_owned(), |a| format!(
                "{:.0} cm2",
                a.as_square_centimeters()
            ))
        );
    }
}
