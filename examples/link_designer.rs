//! Designing a µW-node's radio link end-to-end: link budget, reliability
//! mechanism, MAC discipline and channel-density check in one pass.
//!
//! Run with: `cargo run --example link_designer`

use ambience::radio::{
    analyze_reliability, FecScheme, LinkBudget, MacProtocol, Modulation, Packet, PathLossModel,
    PreambleSamplingMac, RadioEnergyModel, RadioPowerStates, SharedChannel, StopAndWaitArq,
    TrafficLoad,
};
use ambience::units::{DataRate, Frequency, Length, Power, TimeSpan};

fn main() {
    // 1. Close the physical link: 868 MHz FSK indoors, 0 dBm transmitter.
    let link = LinkBudget::new(
        PathLossModel::indoor(Frequency::from_megahertz(868.0)),
        Modulation::Fsk,
        10.0,
        1e-4,
    );
    let tx = Power::from_milliwatts(1.0);
    let rate = DataRate::from_kilobits_per_second(50.0);
    let range = link.max_range(tx, rate);
    println!(
        "1. Link budget: 0 dBm FSK at 50 kbit/s closes {:.0} m indoors.",
        range.as_meters()
    );
    let d = Length::from_meters(20.0);
    println!(
        "   At 20 m the margin is {:.1} dB.",
        link.margin_db(tx, d, rate)
    );

    // 2. Pick the reliability mechanism for the actual channel.
    let radio = RadioEnergyModel::short_range_2003();
    let packet = Packet::sensor_report();
    let arq = StopAndWaitArq::new(8);
    println!("\n2. Reliability at a bruised BER of 3e-3:");
    for fec in FecScheme::all() {
        let report = analyze_reliability(&packet, fec, arq, 3e-3, d, &radio);
        println!(
            "   {:<13} {:.1} nJ/delivered bit, {:.1}% delivered, E[tx] {:.2}",
            fec.to_string(),
            report.energy_per_delivered_bit.as_nanojoules_per_bit(),
            100.0 * report.delivery_probability,
            report.expected_transmissions
        );
    }

    // 3. Pick the listening discipline.
    let mac = PreambleSamplingMac::new(TimeSpan::from_seconds(2.0));
    let traffic = TrafficLoad::periodic_report(TimeSpan::from_minutes(5.0));
    let analysis = mac.analyze(&RadioPowerStates::sensor_default(), &traffic);
    println!(
        "\n3. MAC: 2 s channel checks cost {} average at 5-minute reports\n   (latency {:.1} s, duty {:.2}%).",
        analysis.average_power,
        analysis.mean_latency.as_seconds(),
        100.0 * analysis.effective_duty
    );

    // 4. Does the room's channel carry the fleet?
    let channel = SharedChannel::sensor_default();
    println!(
        "\n4. Density: one 50 kbit/s channel sustains up to {:.0} such nodes\n   at the slotted-ALOHA peak; 200 nodes see {:.1}% delivery.",
        channel.max_nodes(TimeSpan::from_minutes(5.0)),
        100.0 * channel.delivered_fraction(200.0, TimeSpan::from_minutes(5.0))
    );

    println!("\nEvery number above came from the same models the experiments use.");
}
