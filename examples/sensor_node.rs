//! Designing an autonomous µW-node: close the energy loop of a
//! light-harvesting sensor (the CS1 case study, interactively).
//!
//! Run with: `cargo run --example sensor_node`

use ambience::core::case_studies::cs1::{run_cs1, sweep_storage, Cs1Config};
use ambience::units::{Area, Capacitance, TimeSpan};

fn main() {
    // The default design: 8 cm² of amorphous-Si PV, a 1 F supercap,
    // 2-second LPL channel checks, 5-minute reports, 180 nm silicon.
    let design = Cs1Config::default();
    let result = run_cs1(&design);

    println!("Power budget of the node:\n");
    print!("{}", result.budget.table());

    println!("\nEnergy loop over three office days:");
    println!("  mean harvested : {}", result.sustainability.mean_harvest);
    println!("  mean consumed  : {}", result.sustainability.mean_load);
    println!("  margin         : {}", result.sustainability.margin());
    println!(
        "  outage         : {:.2}% of the time",
        100.0 * result.sustainability.outage_fraction
    );
    println!("  sustainable    : {}", result.sustainability.sustainable);

    // What if we shrink the solar cell?
    let cramped = Cs1Config {
        pv_area: Area::from_square_centimeters(2.0),
        ..design.clone()
    };
    let worse = run_cs1(&cramped);
    println!(
        "\nWith only 2 cm² of PV the margin turns {} and the node {}",
        worse.sustainability.margin(),
        if worse.sustainability.sustainable {
            "still survives"
        } else {
            "starves"
        }
    );

    // And what if we check the channel ten times more often?
    let eager = Cs1Config {
        check_interval: TimeSpan::from_millis(200.0),
        ..design.clone()
    };
    let hungry = run_cs1(&eager);
    println!(
        "Checking the channel every 200 ms raises the load to {} -> sustainable: {}",
        hungry.budget.total(),
        hungry.sustainability.sustainable
    );

    // Storage is the night bridge — sweep it.
    println!("\nStorage sizing (outage fraction):");
    for (cap, outage) in sweep_storage(
        &design,
        &[
            Capacitance::from_millifarads(10.0),
            Capacitance::from_millifarads(100.0),
            Capacitance::from_farads(1.0),
        ],
    ) {
        println!("  {:>8}: {:.1}%", cap.to_string(), 100.0 * outage);
    }
}
