//! Choosing silicon for a static W-node: the CS3 media hub's
//! flexibility–efficiency trade-off at video rates.
//!
//! Run with: `cargo run --example media_hub`

use ambience::arch::ArchitectureClass;
use ambience::core::case_studies::cs3::{best_format, flexibility_table_text, Cs3Config};
use ambience::units::Power;

fn main() {
    let config = Cs3Config::default();
    println!(
        "Video decode on a {} hub with a {} silicon ceiling:\n",
        config.node.name(),
        config.ceiling
    );
    print!("{}", flexibility_table_text(&config));

    println!("\nHighest format each architecture sustains inside the ceiling:");
    for class in ArchitectureClass::all() {
        println!(
            "  {:<5} -> {}",
            class.to_string(),
            best_format(&config, class).map_or("none".to_owned(), |f| f.to_string())
        );
    }

    // Tighten the thermal budget (a sealed, fanless enclosure).
    let sealed = Cs3Config {
        ceiling: Power::from_milliwatts(300.0),
        ..config
    };
    println!("\nInside a sealed 300 mW enclosure:");
    for class in ArchitectureClass::all() {
        println!(
            "  {:<5} -> {}",
            class.to_string(),
            best_format(&sealed, class).map_or("none".to_owned(), |f| f.to_string())
        );
    }
    println!("\nMoral: flexibility is a power decision, not just a tooling one.");
}
