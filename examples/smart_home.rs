//! An ambient room end-to-end: a network of µW sensor nodes, a personal
//! mW player and a W-class media hub — the keynote's device taxonomy as a
//! running system.
//!
//! Run with: `cargo run --example smart_home`

use ambience::core::ambient_room;
use ambience::core::challenges::{audit, report};
use ambience::net::{simulate_gathering, NetworkConfig, RoutingStrategy, Topology};
use ambience::units::Length;

fn main() {
    // Twelve harvesting sensors, one audio player, one hub.
    let room = ambient_room(12);
    let [micro, milli, watt] = room.class_census();
    println!(
        "'{}' hosts {} devices: {} µW-nodes, {} mW-node(s), {} W-node(s).",
        room.name(),
        room.devices().len(),
        micro,
        milli,
        watt
    );
    println!(
        "Total average power of the environment: {}",
        room.total_power()
    );
    println!(
        "Every device matches its energy source class: {}",
        room.all_class_consistent()
    );

    println!("\nThe room on the power-information graph:\n");
    print!("{}", room.graph().table());

    // Now run the sensor network itself: a 4x3-ish random field reporting
    // to the hub for a simulated day.
    println!("\nSimulating the sensor network for one day (1-minute rounds):");
    let field = Topology::random(13, Length::from_meters(60.0), 2003);
    let config = NetworkConfig::sensor_default();
    let report = simulate_gathering(&field, RoutingStrategy::MinimumEnergy, &config, 24 * 60);
    println!(
        "  delivered {} reports ({:.1} kbit of ambient information)",
        report.delivered_packets,
        report.delivered_volume.as_kilobits()
    );
    println!(
        "  network energy {} -> {:.2} mJ per delivered report",
        report.total_energy,
        report.total_energy.as_joules() * 1e3 / report.delivered_packets as f64
    );
    println!(
        "  nodes alive after a day: {}/{}",
        report.alive_nodes,
        field.len() - 1
    );
    match report.first_death_round {
        Some(round) => println!("  first node died in round {round}"),
        None => println!("  no node died — the µW design holds"),
    }

    // Finally, audit every device against its class contract.
    println!("\nDesign-challenge audit of the room's device archetypes:");
    let mut audited = std::collections::HashSet::new();
    for device in room.devices() {
        let archetype = device
            .name()
            .trim_end_matches(|c: char| c.is_ascii_digit() || c == ' ');
        if !audited.insert(archetype.to_owned()) {
            continue;
        }
        println!("\n[{}]", device.name());
        print!("{}", self::report_text(device));
    }
}

fn report_text(device: &ambience::core::AmbientDevice) -> String {
    report(&audit(device))
}
