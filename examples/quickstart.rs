//! Quickstart: locate devices on the power–information graph and let the
//! toolkit classify them into the keynote's three classes.
//!
//! Run with: `cargo run --example quickstart`

use ambience::power::{portfolio_2003, DeviceKind, DevicePoint, PowerClass};
use ambience::units::{DataRate, Power};

fn main() {
    // Start from the built-in 2003 portfolio…
    let mut graph = portfolio_2003();

    // …and add a device of your own: a wrist-worn health monitor.
    graph.add(DevicePoint::new(
        "wrist health monitor",
        DataRate::from_bits_per_second(50.0),
        Power::from_microwatts(250.0),
        DeviceKind::Computation,
    ));

    println!("The power-information graph:\n");
    print!("{}", graph.table());

    println!("\nClass populations:");
    for class in PowerClass::all() {
        println!(
            "  {:<8} ({}, fed by {}): {} devices",
            class.to_string(),
            class.device_name(),
            class.energy_source(),
            graph.in_class(class).len()
        );
    }

    let best = graph.most_efficient().expect("graph is non-empty");
    println!(
        "\nMost information-efficient device: {} at {:.2e} bit/J",
        best.name(),
        best.bits_per_joule()
    );
}
