//! Budgeting a personal mW-node: the battery-powered digital-audio
//! receiver of case study CS2, with DVS on the decoder DSP.
//!
//! Run with: `cargo run --example personal_audio`

use ambience::core::case_studies::cs2::{run_cs2, Cs2Config};
use ambience::dvs::DvsPolicy;
use ambience::tech::TechnologyNode;

fn main() {
    let base = Cs2Config::default();
    let result = run_cs2(&base);

    println!("Component power budget (130 nm, per-job DVS):\n");
    print!("{}", result.budget.table());
    println!(
        "\nThe DSP simulation ran {} decode jobs with {} deadline misses.",
        result.dsp.jobs_run, result.dsp.deadline_misses
    );
    println!(
        "Battery life on one alkaline AA: {:.1} hours",
        result.battery_life.as_hours()
    );

    println!("\nWhat the DVS policy is worth on the DSP line:");
    for policy in DvsPolicy::all() {
        let run = run_cs2(&Cs2Config {
            policy,
            ..base.clone()
        });
        println!(
            "  {:<22} DSP {:>8}  device total {:>8}  life {:>6.1} h",
            policy.to_string(),
            run.dsp.average_power().to_string(),
            run.budget.total().to_string(),
            run.battery_life.as_hours()
        );
    }

    println!("\nAnd what a technology shrink is worth:");
    for node in [
        TechnologyNode::n250(),
        TechnologyNode::n130(),
        TechnologyNode::n65(),
    ] {
        let run = run_cs2(&Cs2Config {
            node: node.clone(),
            ..base.clone()
        });
        println!(
            "  {:<6} DSP {:>8}  device total {:>8}",
            node.name(),
            run.dsp.average_power().to_string(),
            run.budget.total().to_string()
        );
    }
    println!("\nMoral: the digital part melts away; the analog floor stays.");
}
